"""Unit and property tests for the Helman–JáJá sample sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.primitives import sample_argsort, sample_sort
from repro.smp import Machine


class TestSampleSort:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 13])
    def test_sorted_output(self, p):
        rng = np.random.default_rng(p)
        keys = rng.integers(0, 10_000, size=2000)
        np.testing.assert_array_equal(sample_sort(keys, Machine(p)), np.sort(keys))

    def test_empty(self):
        assert sample_sort(np.array([], dtype=np.int64)).size == 0

    def test_single(self):
        np.testing.assert_array_equal(sample_sort(np.array([42])), [42])

    def test_already_sorted(self):
        keys = np.arange(100)
        np.testing.assert_array_equal(sample_sort(keys, Machine(4)), keys)

    def test_reverse_sorted(self):
        keys = np.arange(100)[::-1].copy()
        np.testing.assert_array_equal(sample_sort(keys, Machine(4)), np.arange(100))

    def test_all_equal(self):
        keys = np.full(500, 7)
        np.testing.assert_array_equal(sample_sort(keys, Machine(8)), keys)

    def test_floats(self):
        rng = np.random.default_rng(0)
        keys = rng.normal(size=300)
        np.testing.assert_allclose(sample_sort(keys, Machine(4)), np.sort(keys))


class TestSampleArgsort:
    @pytest.mark.parametrize("p", [1, 3, 12])
    def test_matches_stable_argsort(self, p):
        rng = np.random.default_rng(p + 50)
        keys = rng.integers(0, 40, size=1000)  # heavy duplicates: stability matters
        perm = sample_argsort(keys, Machine(p))
        np.testing.assert_array_equal(perm, np.argsort(keys, kind="stable"))

    def test_is_permutation(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 5, size=200)
        perm = sample_argsort(keys, Machine(6))
        np.testing.assert_array_equal(np.sort(perm), np.arange(200))

    def test_stability_with_few_distinct_keys(self):
        keys = np.array([1, 0, 1, 0, 1, 0])
        perm = sample_argsort(keys, Machine(3))
        np.testing.assert_array_equal(perm, [1, 3, 5, 0, 2, 4])

    def test_oversample_knob(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 1000, size=500)
        for oversample in (2, 8, 32):
            perm = sample_argsort(keys, Machine(4), oversample=oversample)
            np.testing.assert_array_equal(perm, np.argsort(keys, kind="stable"))

    def test_charges_sort_work(self):
        from repro.smp import FLAT_UNIT_COSTS

        m = Machine(4, FLAT_UNIT_COSTS)
        rng = np.random.default_rng(3)
        sample_argsort(rng.integers(0, 100, 256), m)
        assert m.totals.work_total > 256  # superlinear: local sorts + exchange

    @given(
        arrays(np.int64, st.integers(0, 400), elements=st.integers(-100, 100)),
        st.integers(1, 14),
    )
    @settings(max_examples=40, deadline=None)
    def test_hypothesis_stable(self, keys, p):
        perm = sample_argsort(keys, Machine(p))
        np.testing.assert_array_equal(perm, np.argsort(keys, kind="stable"))
