"""Property test: async answers are stale-but-consistent, never torn.

A hypothesis rule-based machine drives an async (stale-while-revalidate)
:class:`ServiceEngine` and a twin synchronous engine through the same
randomized update batches, recording the sequential-Tarjan oracle answer
vector of *every* graph version along the way.  Two invariants:

* ``freshness="any"`` answers must equal the oracle vector of SOME
  version the graph has actually held — a whole batched answer comes
  from one consistent snapshot (stale is allowed, a torn mix of two
  versions is not);
* ``freshness="fresh"`` answers must be bit-identical to the synchronous
  twin (and hence to the newest oracle) — async maintenance is an
  optimization, not a semantics change.

The staleness budget is unbounded and the coalescing window is long, so
background swaps land at arbitrary points relative to the queries —
exactly the racy regime the snapshot design must make invisible.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.tarjan import tarjan_bcc
from repro.graph import generators as gen
from repro.service.engine import ServiceEngine

N = 10  # small vertex count keeps the per-version Tarjan oracle cheap

pair = st.tuples(st.integers(0, N - 1), st.integers(0, N - 1))


def _oracle_vector(g) -> tuple:
    """The full answer surface of one graph version, hashable."""
    res = tarjan_bcc(g)
    cuts = set(res.articulation_points().tolist())
    return (
        int(res.num_components),
        tuple(v in cuts for v in range(N)),
    )


class AsyncConsistencyMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 2**16))
    def start(self, seed):
        g = gen.random_gnm(N, 12, seed=seed)
        self.engine = ServiceEngine(
            rebuild_mode="async",
            coalesce_ms=20.0,
            staleness_budget_ms=None,  # stale serves are always legal here
            cache_size=3,
        )
        self.sync_engine = ServiceEngine(cache_size=3)
        self.engine.put_graph("g", g)
        self.sync_engine.put_graph("g", g)
        self.versions = {_oracle_vector(g)}

    def _update(self, method, batch):
        getattr(self.engine, method)("g", batch)
        getattr(self.sync_engine, method)("g", batch)
        self.versions.add(_oracle_vector(self.engine.graph("g")))

    @rule(batch=st.lists(pair, min_size=1, max_size=3))
    def add_edges(self, batch):
        self._update("add_edges", batch)

    @rule(batch=st.lists(pair, min_size=1, max_size=3))
    def remove_edges(self, batch):
        self._update("remove_edges", batch)

    @rule(data=st.data())
    def remove_existing_edge(self, data):
        g = self.engine.graph("g")
        if g.m:
            i = data.draw(st.integers(0, g.m - 1))
            self._update("remove_edges", [(int(g.u[i]), int(g.v[i]))])

    @invariant()
    def any_answer_is_some_valid_version(self):
        vs = list(range(N))
        nc = self.engine.query("g", "num_components")
        cuts = self.engine.query_many("g", "is_articulation_many", vs=vs)
        # each batched answer must be one historical version whole — a mix
        # of two versions would (generically) match none of them
        assert tuple(bool(x) for x in cuts) in {v[1] for v in self.versions}
        assert nc in {v[0] for v in self.versions}

    @invariant()
    def fresh_is_bit_identical_to_sync(self):
        vs = list(range(N))
        fresh = self.engine.query_many(
            "g", "is_articulation_many", vs=vs, freshness="fresh"
        )
        twin = self.sync_engine.query_many("g", "is_articulation_many", vs=vs)
        assert np.array_equal(fresh, twin)
        assert self.engine.query(
            "g", "num_components", freshness="fresh"
        ) == self.sync_engine.query("g", "num_components")

    def teardown(self):
        if hasattr(self, "engine"):
            self.engine.drain(timeout=10.0)
            self.engine.close()
            assert not self.engine._scheduler.alive
            self.sync_engine.close()


AsyncConsistencyMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=8, deadline=None
)
TestAsyncConsistency = AsyncConsistencyMachine.TestCase
