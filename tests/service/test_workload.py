"""Tests for workload generation and the JSON-lines file format."""

import json

import pytest

from repro.graph import generators as gen
from repro.service.workload import (
    BATCHABLE,
    BATCH_OP_NAMES,
    DEFAULT_MIX,
    QUERY_OP_NAMES,
    UPDATE_OP_NAMES,
    Workload,
    WorkloadSpec,
    generate_workload,
    instance_graph,
    load_workload,
    mix_with_update_fraction,
    op_item_count,
    save_workload,
)

GRAPH_SPEC = {"family": "connected-gnm", "n": 100, "m": 300, "seed": 5}


class TestMix:
    def test_default_mix_is_90_10(self):
        q = sum(w for k, w in DEFAULT_MIX.items() if k in QUERY_OP_NAMES)
        u = sum(w for k, w in DEFAULT_MIX.items() if k in UPDATE_OP_NAMES)
        assert q == pytest.approx(0.9) and u == pytest.approx(0.1)

    def test_rescale(self):
        mix = mix_with_update_fraction(0.25)
        u = sum(w for k, w in mix.items() if k in UPDATE_OP_NAMES)
        assert sum(mix.values()) == pytest.approx(1.0)
        assert u == pytest.approx(0.25)
        # relative weights within each class are preserved
        assert mix["same_bcc"] / mix["num_components"] == pytest.approx(
            DEFAULT_MIX["same_bcc"] / DEFAULT_MIX["num_components"]
        )

    def test_extremes(self):
        assert all(
            mix_with_update_fraction(0.0)[k] == 0.0 for k in UPDATE_OP_NAMES
        )
        assert all(
            mix_with_update_fraction(1.0)[k] == 0.0 for k in QUERY_OP_NAMES
        )

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="update_frac"):
            mix_with_update_fraction(1.5)


class TestSpecValidation:
    def test_bad_vertex_dist(self):
        with pytest.raises(ValueError, match="vertex_dist"):
            WorkloadSpec(vertex_dist="zipf")

    def test_unknown_op_in_mix(self):
        with pytest.raises(ValueError, match="unknown ops"):
            WorkloadSpec(mix={"same_bcc": 1.0, "pagerank": 1.0})

    def test_bad_weights(self):
        with pytest.raises(ValueError, match="weights"):
            WorkloadSpec(mix={"same_bcc": -1.0})
        with pytest.raises(ValueError, match="weights"):
            WorkloadSpec(mix={"same_bcc": 0.0})

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="weights.*sum"):
            WorkloadSpec(mix={"same_bcc": 0.5, "is_bridge": 0.6})
        # a hair inside the tolerance is fine
        WorkloadSpec(mix={"same_bcc": 0.5, "is_bridge": 0.5 + 5e-7})

    def test_negative_ops(self):
        with pytest.raises(ValueError, match="num_ops"):
            WorkloadSpec(num_ops=-1)

    def test_bad_query_batch(self):
        with pytest.raises(ValueError, match="query_batch"):
            WorkloadSpec(query_batch=0)

    def test_batch_ops_allowed_in_mix(self):
        WorkloadSpec(mix={"same_bcc_many": 0.5, "classify_edges": 0.5})

    def test_round_trips_through_dict(self):
        spec = WorkloadSpec(num_ops=5, seed=3, graph=dict(GRAPH_SPEC))
        assert WorkloadSpec.from_dict(spec.as_dict()) == spec

    def test_query_batch_round_trips_through_dict(self):
        spec = WorkloadSpec(num_ops=5, seed=3, query_batch=64, graph=dict(GRAPH_SPEC))
        assert WorkloadSpec.from_dict(spec.as_dict()).query_batch == 64


class TestGeneration:
    def test_deterministic(self):
        spec = WorkloadSpec(num_ops=200, seed=11, graph=dict(GRAPH_SPEC))
        a = generate_workload(spec)
        b = generate_workload(spec)
        assert a.ops == b.ops
        c = generate_workload(WorkloadSpec(num_ops=200, seed=12, graph=dict(GRAPH_SPEC)))
        assert a.ops != c.ops

    def test_counts_and_shapes(self):
        spec = WorkloadSpec(num_ops=300, seed=2, batch_size=3, graph=dict(GRAPH_SPEC))
        wl = generate_workload(spec)
        assert len(wl) == 300
        assert wl.num_queries + wl.num_updates == 300
        for op in wl.ops:
            if op["op"] in ("same_bcc", "is_bridge", "component_of_edge"):
                assert 0 <= op["u"] < 100 and 0 <= op["v"] < 100
            elif op["op"] == "is_articulation":
                assert 0 <= op["v"] < 100
            elif op["op"] in UPDATE_OP_NAMES:
                assert 1 <= len(op["edges"]) <= 3

    def test_query_only_mix(self):
        spec = WorkloadSpec(num_ops=100, mix=mix_with_update_fraction(0.0),
                            graph=dict(GRAPH_SPEC))
        wl = generate_workload(spec)
        assert wl.num_updates == 0 and wl.num_queries == 100

    def test_skewed_dist(self):
        spec = WorkloadSpec(num_ops=400, vertex_dist="skewed", skew=4.0,
                            mix={"is_articulation": 1.0}, graph=dict(GRAPH_SPEC))
        wl = generate_workload(spec)
        vs = [op["v"] for op in wl.ops]
        assert all(0 <= v < 100 for v in vs)
        # polynomial skew concentrates mass on low vertex ids
        assert sum(1 for v in vs if v < 20) > len(vs) / 2

    def test_edge_bias_hits_real_edges(self):
        g = gen.cycle_graph(50)
        spec = WorkloadSpec(num_ops=300, mix={"is_bridge": 1.0}, edge_bias=1.0)
        wl = generate_workload(spec, graph=g)
        real = {tuple(e) for e in g.edges().tolist()}
        hits = sum(
            1 for op in wl.ops
            if (min(op["u"], op["v"]), max(op["u"], op["v"])) in real
        )
        assert hits == 300  # bias 1.0: every edge-shaped op samples a real edge

    def test_explicit_graph_overrides_spec(self):
        spec = WorkloadSpec(num_ops=10, mix={"is_articulation": 1.0})
        wl = generate_workload(spec, graph=gen.path_graph(4))
        assert all(op["v"] < 4 for op in wl.ops)

    def test_needs_graph(self):
        with pytest.raises(ValueError, match="no graph entry"):
            generate_workload(WorkloadSpec(num_ops=5))

    def test_tiny_graph_rejected(self):
        with pytest.raises(ValueError, match=">= 2 vertices"):
            generate_workload(WorkloadSpec(num_ops=5), graph=gen.path_graph(1))


class TestBatchedGeneration:
    def test_batch_one_is_bit_identical_to_scalar_stream(self):
        base = WorkloadSpec(num_ops=150, seed=4, graph=dict(GRAPH_SPEC))
        batched = WorkloadSpec(num_ops=150, seed=4, query_batch=1,
                               graph=dict(GRAPH_SPEC))
        assert generate_workload(base).ops == generate_workload(batched).ops

    def test_batched_records_carry_items(self):
        spec = WorkloadSpec(num_ops=60, seed=4, query_batch=8,
                            graph=dict(GRAPH_SPEC))
        wl = generate_workload(spec)
        kinds = {op["op"] for op in wl.ops}
        assert kinds & set(BATCH_OP_NAMES)
        assert not kinds & set(BATCHABLE)  # every batchable scalar promoted
        for op in wl.ops:
            if op["op"] in BATCH_OP_NAMES:
                key = "vs" if op["op"] == "is_articulation_many" else "pairs"
                items = op["params"][key]
                assert len(items) == 8
                assert op_item_count(op) == 8
                if key == "pairs":
                    assert all(len(p) == 2 for p in items)

    def test_num_query_items(self):
        spec = WorkloadSpec(num_ops=40, seed=4, query_batch=16,
                            mix=mix_with_update_fraction(0.0),
                            graph=dict(GRAPH_SPEC))
        wl = generate_workload(spec)
        assert wl.num_queries == 40
        # num_components is not batchable, so those records stay size-1
        batched = sum(1 for op in wl.ops if op["op"] in BATCH_OP_NAMES)
        scalar = 40 - batched
        assert batched > 0
        assert wl.num_query_items == batched * 16 + scalar

    def test_batched_round_trip(self, tmp_path):
        spec = WorkloadSpec(num_ops=50, seed=7, query_batch=4,
                            graph=dict(GRAPH_SPEC))
        wl = generate_workload(spec)
        path = tmp_path / "b.jsonl"
        save_workload(wl, path)
        back = load_workload(path)
        assert back.spec == wl.spec
        assert back.spec.query_batch == 4
        assert back.ops == wl.ops

    def test_op_item_count_scalar(self):
        assert op_item_count({"op": "same_bcc", "u": 0, "v": 1}) == 1
        assert op_item_count({"op": "add_edges", "edges": [[0, 1], [2, 3]]}) == 1


class TestTenantStamping:
    def test_tenant_stamped_on_every_record(self):
        spec = WorkloadSpec(num_ops=40, seed=3, tenant="acme",
                            graph=dict(GRAPH_SPEC))
        wl = generate_workload(spec)
        assert all(op["tenant"] == "acme" for op in wl.ops)

    def test_no_tenant_key_by_default(self):
        wl = generate_workload(WorkloadSpec(num_ops=40, seed=3,
                                            graph=dict(GRAPH_SPEC)))
        assert all("tenant" not in op for op in wl.ops)

    def test_tenant_only_changes_stamp_not_stream(self):
        plain = generate_workload(WorkloadSpec(num_ops=40, seed=3,
                                               graph=dict(GRAPH_SPEC)))
        stamped = generate_workload(WorkloadSpec(num_ops=40, seed=3,
                                                 tenant="acme",
                                                 graph=dict(GRAPH_SPEC)))
        stripped = [{k: v for k, v in op.items() if k != "tenant"}
                    for op in stamped.ops]
        assert stripped == plain.ops

    def test_tenant_round_trips_through_file(self, tmp_path):
        spec = WorkloadSpec(num_ops=30, seed=4, tenant="acme",
                            graph=dict(GRAPH_SPEC))
        wl = generate_workload(spec)
        path = tmp_path / "t.jsonl"
        save_workload(wl, path)
        back = load_workload(path)
        assert back.spec.tenant == "acme"
        assert back.ops == wl.ops

    def test_engine_ignores_routing_keys(self):
        # a stamped record must run unchanged on a single engine
        from repro.service.engine import ServiceEngine

        engine = ServiceEngine()
        engine.put_graph("g", gen.random_connected_gnm(30, 60, seed=1))
        plain = engine.apply("g", {"op": "same_bcc", "u": 0, "v": 1})
        routed = engine.apply("g", {"op": "same_bcc", "u": 0, "v": 1,
                                    "tenant": "acme", "graph": "g", "seq": 3})
        assert routed == plain and type(routed) is type(plain)


class TestInstanceGraph:
    def test_family(self):
        g = instance_graph(WorkloadSpec(graph=dict(GRAPH_SPEC)))
        assert g.n == 100 and g.m == 300

    def test_path(self, tmp_path):
        from repro.graph.io import write_edgelist

        p = tmp_path / "g.edges"
        write_edgelist(gen.cycle_graph(7), p)
        g = instance_graph(WorkloadSpec(graph={"path": str(p)}))
        assert g.n == 7 and g.m == 7


class TestFileFormat:
    def test_round_trip(self, tmp_path):
        spec = WorkloadSpec(num_ops=120, seed=9, vertex_dist="skewed",
                            graph=dict(GRAPH_SPEC))
        wl = generate_workload(spec)
        path = tmp_path / "w.jsonl"
        save_workload(wl, path)
        back = load_workload(path)
        assert back.spec == wl.spec
        assert back.ops == wl.ops

    def test_header_is_first_line(self, tmp_path):
        wl = generate_workload(WorkloadSpec(num_ops=3, graph=dict(GRAPH_SPEC)))
        path = tmp_path / "w.jsonl"
        save_workload(wl, path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["workload"] == 1
        assert header["spec"]["num_ops"] == 3
        assert len(lines) == 4

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"op": "same_bcc", "u": 0, "v": 1}\n')
        with pytest.raises(ValueError, match="workload"):
            load_workload(path)
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="bad workload header"):
            load_workload(path)

    def test_unknown_op_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        spec = WorkloadSpec(num_ops=0, graph=dict(GRAPH_SPEC))
        path.write_text(
            json.dumps({"workload": 1, "spec": spec.as_dict()}) + "\n"
            + '{"op": "pagerank"}\n'
        )
        with pytest.raises(ValueError, match="line 2.*pagerank"):
            load_workload(path)

    def test_blank_lines_skipped(self, tmp_path):
        wl = generate_workload(WorkloadSpec(num_ops=2, graph=dict(GRAPH_SPEC)))
        path = tmp_path / "w.jsonl"
        save_workload(wl, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_workload(path).ops) == 2

    def test_workload_len_and_counts(self):
        wl = Workload(WorkloadSpec(num_ops=0), [{"op": "same_bcc", "u": 0, "v": 1},
                                                {"op": "add_edges", "edges": [[0, 1]]}])
        assert len(wl) == 2 and wl.num_queries == 1 and wl.num_updates == 1
