"""Property test: incremental maintenance is an optimization, not a change.

Two layers of evidence that ``maintenance="auto"`` (delta-log patching
via extend/shrink) answers bit-identically to ``maintenance="full"``
(every catch-up is a from-scratch rebuild) and to a synchronous engine:

* a hypothesis rule-based machine drives an auto engine, a full engine,
  and a synchronous twin through the same randomized churn and asserts
  ``freshness="fresh"`` answers are element-wise identical across all
  three (and stale ``"any"`` answers agree with the Tarjan oracle of
  some real version);
* a deterministic sweep over the QA corpus applies seeded churn —
  biased toward intra-block adds and bridge removals so the incremental
  paths actually fire — and checks the full answer surface after every
  step.
"""

import zlib

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.tarjan import tarjan_bcc
from repro.graph import generators as gen
from repro.qa.corpus import named_corpus
from repro.service.engine import ServiceEngine

N = 10  # small vertex count keeps the per-version Tarjan oracle cheap

pair = st.tuples(st.integers(0, N - 1), st.integers(0, N - 1))


class MaintenanceEquivalenceMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 2**16))
    def start(self, seed):
        g = gen.random_gnm(N, 12, seed=seed)
        self.auto = ServiceEngine(
            rebuild_mode="async",
            coalesce_ms=20.0,
            staleness_budget_ms=None,
            cache_size=3,
            maintenance="auto",
        )
        self.full = ServiceEngine(
            rebuild_mode="async",
            coalesce_ms=20.0,
            staleness_budget_ms=None,
            cache_size=3,
            maintenance="full",
        )
        self.sync = ServiceEngine(cache_size=3)
        for eng in (self.auto, self.full, self.sync):
            eng.put_graph("g", g)

    def _update(self, method, batch):
        for eng in (self.auto, self.full, self.sync):
            getattr(eng, method)("g", batch)

    @rule(batch=st.lists(pair, min_size=1, max_size=3))
    def add_edges(self, batch):
        self._update("add_edges", batch)

    @rule(batch=st.lists(pair, min_size=1, max_size=3))
    def remove_edges(self, batch):
        self._update("remove_edges", batch)

    @rule(data=st.data())
    def remove_existing_edge(self, data):
        g = self.sync.graph("g")
        if g.m:
            i = data.draw(st.integers(0, g.m - 1))
            self._update("remove_edges", [(int(g.u[i]), int(g.v[i]))])

    @rule()
    def query_any(self):
        # stale serves keep snapshots (and hence incremental bases) warm
        self.auto.query("g", "num_components")
        self.full.query("g", "num_components")

    @invariant()
    def fresh_answers_identical_across_maintenance_modes(self):
        vs = list(range(N))
        pairs = [(a, b) for a in range(0, N, 3) for b in range(1, N, 4)]
        sync_cuts = self.sync.query_many("g", "is_articulation_many", vs=vs)
        sync_same = self.sync.query_many("g", "same_bcc_many", pairs=pairs)
        sync_nc = self.sync.query("g", "num_components")
        for eng in (self.auto, self.full):
            assert np.array_equal(
                eng.query_many("g", "is_articulation_many", vs=vs,
                               freshness="fresh"),
                sync_cuts,
            )
            assert np.array_equal(
                eng.query_many("g", "same_bcc_many", pairs=pairs,
                               freshness="fresh"),
                sync_same,
            )
            assert eng.query("g", "num_components", freshness="fresh") == sync_nc
        # the sync engine itself matches a from-scratch oracle
        res = tarjan_bcc(self.sync.graph("g"))
        assert sync_nc == int(res.num_components)

    def teardown(self):
        if hasattr(self, "auto"):
            for eng in (self.auto, self.full):
                eng.drain(timeout=10.0)
                eng.close()
                assert not eng._scheduler.alive
            self.sync.close()


MaintenanceEquivalenceMachine.TestCase.settings = settings(
    max_examples=8, stateful_step_count=8, deadline=None
)
TestMaintenanceEquivalence = MaintenanceEquivalenceMachine.TestCase


def _answer_surface(eng, n):
    vs = list(range(n))
    pairs = [(a, b) for a in range(n) for b in range(a + 1, min(a + 4, n))]
    return (
        eng.query("g", "num_components", freshness="fresh"),
        tuple(
            bool(x)
            for x in eng.query_many(
                "g", "is_articulation_many", vs=vs, freshness="fresh"
            )
        ),
        tuple(
            bool(x)
            for x in eng.query_many(
                "g", "same_bcc_many", pairs=pairs, freshness="fresh"
            )
        ),
    )


def _churn_step(rng, g, idx_oracle):
    """One seeded update biased toward incrementally patchable shapes."""
    roll = rng.uniform()
    if roll < 0.5:
        # aim for an intra-block add: two vertices of one >=3-vertex block
        labels = idx_oracle.edge_labels
        lab = labels[rng.integers(0, labels.size)]
        sel = labels == lab
        verts = np.unique(np.concatenate([g.u[sel], g.v[sel]]))
        if verts.size >= 3:
            a, b = rng.choice(verts, size=2, replace=False)
            return "add_edges", [(int(a), int(b))]
        return "add_edges", [(int(rng.integers(0, g.n)), int(rng.integers(0, g.n)))]
    if roll < 0.8 and g.m:
        i = int(rng.integers(0, g.m))
        return "remove_edges", [(int(g.u[i]), int(g.v[i]))]
    return "add_edges", [(int(rng.integers(0, g.n)), int(rng.integers(0, g.n)))]


@pytest.mark.parametrize(
    "name,graph", [(n, g) for n, g in named_corpus() if 4 <= g.n <= 64]
)
def test_auto_equals_full_over_corpus_churn(name, graph):
    auto = ServiceEngine(maintenance="auto")
    full = ServiceEngine(maintenance="full")
    for eng in (auto, full):
        eng.put_graph("g", graph)
    rng = np.random.default_rng(zlib.crc32(name.encode()))
    assert _answer_surface(auto, graph.n) == _answer_surface(full, graph.n)
    for _ in range(6):
        g = auto.graph("g")
        if g.m == 0:
            break
        method, batch = _churn_step(rng, g, tarjan_bcc(g))
        getattr(auto, method)("g", batch)
        getattr(full, method)("g", batch)
        assert _answer_surface(auto, graph.n) == _answer_surface(full, graph.n)
    # every effective update must have been caught up by some strategy
    if auto.stats.updates - auto.stats.noop_updates > 0:
        assert auto.stats.rebuilds_incremental + auto.stats.rebuilds_full > 0
