"""Batch-first query path: vectorized ``*_many`` kernels vs point queries.

The tentpole contract of the batch refactor is *bit-identical semantics*:
every vectorized bulk kernel must answer exactly what the element-wise
point queries answer, on every graph family, including non-edges, self
loops, and repeated items.  Since the scalar methods are now size-1
wrappers over the kernels, the property is checked two ways — batch-of-k
against k batches-of-1 (wrapper consistency) and against an independent
``tarjan_bcc``/``blocks_of_vertex`` reference (kernel correctness).
Engine-level tests pin the batching contract: one index resolve, one
delta replay, one ``Service-query`` region, per-item counter stats.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tarjan import tarjan_bcc
from repro.graph import Graph, generators as gen
from repro.obs import WallClockSink
from repro.service.engine import BATCH_OPS, ServiceEngine
from repro.service.index import BCCIndex
from repro.smp import e4500
from tests.strategies import any_graphs, graph_corpus


def random_pairs(g: Graph, rng: np.random.Generator, k: int) -> np.ndarray:
    """Mix of real edges, random (often non-) pairs, and repeats."""
    n = max(g.n, 1)
    pairs = rng.integers(0, n, size=(k, 2))
    if g.m:
        take = rng.integers(0, g.m, size=k // 2)
        pairs[: k // 2, 0] = g.u[take]
        pairs[: k // 2, 1] = g.v[take]
    if k >= 2:
        pairs[-1] = pairs[0]  # repeated item
    return pairs


def check_batch_equals_scalar(g: Graph, idx: BCCIndex, pairs: np.ndarray) -> None:
    us, vs = pairs[:, 0].tolist(), pairs[:, 1].tolist()
    # pair-shaped kernels vs their scalar wrappers
    np.testing.assert_array_equal(
        idx.same_bcc_many(pairs), [idx.same_bcc(u, v) for u, v in zip(us, vs)]
    )
    np.testing.assert_array_equal(
        idx.is_bridge_many(pairs), [idx.is_bridge(u, v) for u, v in zip(us, vs)]
    )
    comp = idx.component_of_edge_many(pairs)
    expect = [idx.component_of_edge(u, v) for u, v in zip(us, vs)]
    np.testing.assert_array_equal(comp, [-1 if c is None else c for c in expect])
    eids = idx.edge_id_many(pairs)
    expect = [idx.edge_id(u, v) for u, v in zip(us, vs)]
    np.testing.assert_array_equal(eids, [-1 if e is None else e for e in expect])
    cls = idx.classify_edges(pairs)
    np.testing.assert_array_equal(cls["block"], comp)
    np.testing.assert_array_equal(cls["is_bridge"], idx.is_bridge_many(pairs))
    # vertex-shaped kernels
    verts = np.unique(pairs)
    np.testing.assert_array_equal(
        idx.is_articulation_many(verts), [idx.is_articulation(int(v)) for v in verts]
    )
    mask = idx.articulation_mask()
    assert mask.shape == (g.n,) and mask.dtype == bool
    np.testing.assert_array_equal(mask[verts], idx.is_articulation_many(verts))


def check_same_bcc_against_reference(g: Graph, idx: BCCIndex, pairs: np.ndarray) -> None:
    """Independent depth check: shared-block via blocks_of intersection."""
    res = tarjan_bcc(g)
    got = idx.same_bcc_many(pairs)
    for i, (u, v) in enumerate(pairs.tolist()):
        expect = bool(
            np.intersect1d(res.blocks_of_vertex(u), res.blocks_of_vertex(v)).size
        )
        assert bool(got[i]) == expect, (u, v)


@pytest.mark.parametrize(
    "label,g", graph_corpus(), ids=lambda x: x if isinstance(x, str) else ""
)
def test_corpus_batch_matches_scalar(label, g):
    if g.n == 0:
        idx = BCCIndex.build(g)
        assert idx.same_bcc_many(np.empty((0, 2), dtype=np.int64)).size == 0
        return
    idx = BCCIndex.build(g)
    pairs = random_pairs(g, np.random.default_rng(7), 64)
    check_batch_equals_scalar(g, idx, pairs)
    check_same_bcc_against_reference(g, idx, pairs)


@settings(max_examples=40, deadline=None)
@given(g=any_graphs(max_n=30), seed=st.integers(0, 2**16), k=st.integers(1, 48))
def test_property_batch_matches_scalar(g, seed, k):
    if g.n == 0:
        return
    idx = BCCIndex.build(g)
    pairs = random_pairs(g, np.random.default_rng(seed), k)
    check_batch_equals_scalar(g, idx, pairs)
    check_same_bcc_against_reference(g, idx, pairs)


class TestKernelEdges:
    def setup_method(self):
        self.g = gen.cliques_on_a_path(3, 4)[0]
        self.idx = BCCIndex.build(self.g)

    def test_empty_batches(self):
        empty = np.empty((0, 2), dtype=np.int64)
        assert self.idx.same_bcc_many(empty).shape == (0,)
        assert self.idx.is_bridge_many(empty).shape == (0,)
        assert self.idx.component_of_edge_many(empty).shape == (0,)
        assert self.idx.edge_id_many(empty).shape == (0,)
        cls = self.idx.classify_edges(empty)
        assert cls["block"].shape == (0,) and cls["is_bridge"].shape == (0,)
        assert self.idx.is_articulation_many([]).shape == (0,)

    def test_list_of_lists_accepted(self):
        out = self.idx.same_bcc_many([[0, 1], [0, 0]])
        assert out.dtype == bool and out.shape == (2,)
        assert bool(out[0]) == self.idx.same_bcc(0, 1)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="pairs"):
            self.idx.same_bcc_many([0, 1, 2])
        with pytest.raises(ValueError, match="pairs"):
            self.idx.is_bridge_many(np.zeros((2, 3), dtype=np.int64))

    def test_out_of_range_rejected(self):
        n = self.g.n
        with pytest.raises(IndexError, match="out of range"):
            self.idx.same_bcc_many([[0, n]])
        with pytest.raises(IndexError, match="out of range"):
            self.idx.is_articulation_many([0, -1])
        with pytest.raises(IndexError, match="out of range"):
            self.idx.component_of_edge_many([[n, 0]])

    def test_nonedges_sentinel(self):
        # vertices in different cliques: definitely not an edge
        pairs = [[0, self.g.n - 1]]
        assert self.idx.edge_id_many(pairs)[0] == -1
        assert self.idx.component_of_edge_many(pairs)[0] == -1
        assert not self.idx.is_bridge_many(pairs)[0]

    def test_results_are_fresh_arrays(self):
        mask1 = self.idx.articulation_mask()
        mask1[:] = False
        np.testing.assert_array_equal(
            self.idx.articulation_mask(),
            [self.idx.is_articulation(v) for v in range(self.g.n)],
        )


class TestEngineBatch:
    def test_query_many_matches_apply_and_scalar(self):
        g = gen.random_connected_gnm(60, 150, seed=3)
        eng = ServiceEngine()
        eng.put_graph("g", g)
        pairs = random_pairs(g, np.random.default_rng(1), 16).tolist()
        got = eng.query_many("g", "same_bcc_many", pairs=pairs)
        np.testing.assert_array_equal(
            got, [eng.query("g", "same_bcc", u=u, v=v) for u, v in pairs]
        )
        via_apply = eng.apply("g", {"op": "same_bcc_many", "params": {"pairs": pairs}})
        np.testing.assert_array_equal(via_apply, got)

    def test_unknown_batch_op(self):
        eng = ServiceEngine()
        eng.put_graph("g", gen.cycle_graph(4))
        with pytest.raises(ValueError, match="batch"):
            eng.query_many("g", "same_bcc", pairs=[[0, 1]])

    def test_replays_pending_deltas_exactly_once(self):
        g = gen.random_connected_gnm(40, 90, seed=2)
        eng = ServiceEngine()
        eng.put_graph("g", g)
        eng.query("g", "num_components")  # build + cache
        st0 = eng.stats
        assert (st0.rebuilds, st0.incremental_extensions) == (1, 0)
        eng.add_edges("g", [(0, 39), (1, 38)])  # lazy: no replay yet
        out = eng.query_many("g", "is_bridge_many", pairs=[[0, 39], [1, 38]])
        assert not out.any()  # both sit on new cycles through the old graph
        st1 = eng.stats
        assert st1.rebuilds == 1  # extended, not rebuilt
        assert st1.incremental_extensions == 1  # replayed exactly once
        eng.query_many("g", "same_bcc_many", pairs=[[0, 39]])
        st2 = eng.stats
        assert st2.incremental_extensions == 1  # second batch hits cache
        assert st2.cache_hits == st1.cache_hits + 1

    def test_per_item_counter_stats(self):
        eng = ServiceEngine()
        eng.put_graph("g", gen.cycle_graph(8))
        eng.query_many("g", "same_bcc_many", pairs=[[0, 1], [2, 3], [4, 5]])
        eng.query_many("g", "is_articulation_many", vs=[0, 1])
        eng.query("g", "is_articulation", v=0)
        st = eng.stats
        assert st.queries == 6  # 3 + 2 + 1 items, not 3 records
        assert st.per_op["same_bcc_many"] == 3
        assert st.per_op["is_articulation_many"] == 2
        assert st.per_op["is_articulation"] == 1

    def test_single_query_region_per_batch(self):
        eng = ServiceEngine()
        sink = eng.telemetry.add_sink(WallClockSink(record_each=True))
        eng.put_graph("g", gen.cycle_graph(8))
        eng.query("g", "num_components")  # index build outside the probe
        before = len(sink.durations_ns.get("Service-query", []))
        eng.query_many("g", "same_bcc_many", pairs=[[0, 1]] * 100)
        assert len(sink.durations_ns["Service-query"]) == before + 1

    def test_machine_charged_per_item(self):
        pairs = [[0, 1], [1, 2], [2, 3], [3, 4]]
        times = []
        for items in ([pairs[0]], pairs):
            eng = ServiceEngine(machine=e4500(4))
            eng.put_graph("g", gen.cycle_graph(8))
            eng.query("g", "num_components")
            t0 = eng.machine.time_s
            eng.query_many("g", "same_bcc_many", pairs=items)
            times.append(eng.machine.time_s - t0)
        one, four = times
        assert four == pytest.approx(4 * one)

    def test_batch_ops_registry_shape(self):
        for op, (items_key, cost) in BATCH_OPS.items():
            assert op.endswith("_many") or op == "classify_edges"
            assert items_key in ("pairs", "vs")
