"""Tests for batch edge updates and incremental index maintenance."""

import numpy as np
import pytest

from repro.core.tarjan import tarjan_bcc
from repro.graph import Graph, generators as gen
from repro.service.index import BCCIndex
from repro.service.store import graph_fingerprint
from repro.service.updates import (
    apply_add_edges,
    apply_remove_edges,
    extend_index,
    normalize_pairs,
    shrink_index,
)


def assert_index_fresh(idx: BCCIndex) -> None:
    """An incrementally maintained index must equal a from-scratch one."""
    fresh = BCCIndex.build(idx.graph, algorithm="sequential")
    # BCCResult canonicalizes labels by first occurrence, so identical
    # partitions mean identical label arrays
    np.testing.assert_array_equal(idx.result.edge_labels, fresh.result.edge_labels)
    np.testing.assert_array_equal(idx._is_art, fresh._is_art)
    np.testing.assert_array_equal(idx._is_bridge, fresh._is_bridge)
    assert idx.num_components() == fresh.num_components()


class TestNormalizePairs:
    def test_canonical_unique(self):
        lo, hi = normalize_pairs(10, [(3, 1), (1, 3), (5, 2), (4, 4)])
        assert lo.tolist() == [1, 2] and hi.tolist() == [3, 5]

    def test_empty(self):
        lo, hi = normalize_pairs(10, [])
        assert lo.size == 0 and hi.size == 0

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            normalize_pairs(5, [(0, 5)])
        with pytest.raises(ValueError, match="out of range"):
            normalize_pairs(5, [(-1, 2)])


class TestApplyAddEdges:
    def test_noop_returns_same_object(self):
        g = gen.cycle_graph(5)
        ng, lo, hi = apply_add_edges(g, [(0, 1), (1, 0), (2, 2)])
        assert ng is g and lo.size == 0

    def test_effective_only(self):
        g = gen.path_graph(4)  # 0-1-2-3
        ng, lo, hi = apply_add_edges(g, [(0, 1), (0, 3), (3, 0)])
        assert lo.tolist() == [0] and hi.tolist() == [3]
        assert ng.m == g.m + 1
        assert graph_fingerprint(ng) != graph_fingerprint(g)

    def test_add_to_empty_graph(self):
        g = Graph(4, [], [])
        ng, lo, hi = apply_add_edges(g, [(2, 0)])
        assert ng.m == 1 and lo.tolist() == [0] and hi.tolist() == [2]


class TestApplyRemoveEdges:
    def test_noop_returns_same_object(self):
        g = gen.path_graph(4)
        ng, removed = apply_remove_edges(g, [(0, 2), (1, 3)])
        assert ng is g and removed.size == 0

    def test_removes_and_reports_old_ids(self):
        g = gen.path_graph(4)  # edges (0,1)=0 (1,2)=1 (2,3)=2
        ng, removed = apply_remove_edges(g, [(2, 1), (1, 2)])  # dupes collapse
        assert removed.tolist() == [1]
        assert ng.m == 2
        assert ng.edges().tolist() == [[0, 1], [2, 3]]


class TestExtendIndex:
    def test_chord_inside_block(self):
        g = gen.cycle_graph(6)
        idx = BCCIndex.build(g)
        ng, au, av = apply_add_edges(g, [(0, 3)])
        out = extend_index(idx, ng, au, av, fingerprint=graph_fingerprint(ng))
        assert out is not None and out.source == "extend"
        assert out.fingerprint == graph_fingerprint(ng)
        assert_index_fresh(out)

    def test_parallel_inside_clique(self):
        g, _ = gen.cliques_on_a_path(3, 4)
        idx = BCCIndex.build(g)
        # both endpoints interior to one clique block: pick a clique edge's
        # endpoints, already adjacent -> add a fresh pair inside the block
        res = tarjan_bcc(g)
        lab0 = res.edge_labels == res.edge_labels[0]
        verts = np.unique(np.concatenate([g.u[lab0], g.v[lab0]]))
        ng, au, av = apply_add_edges(g, [(int(verts[0]), int(verts[-1]))])
        if au.size:  # not already an edge
            out = extend_index(idx, ng, au, av)
            assert out is not None
            assert_index_fresh(out)

    def test_edge_between_blocks_bails(self):
        g = gen.path_graph(3)  # blocks {0,1} and {1,2}
        idx = BCCIndex.build(g)
        ng, au, av = apply_add_edges(g, [(0, 2)])
        assert extend_index(idx, ng, au, av) is None

    def test_edge_between_components_bails(self):
        g = Graph(4, [0, 2], [1, 3])
        idx = BCCIndex.build(g)
        ng, au, av = apply_add_edges(g, [(1, 2)])
        assert extend_index(idx, ng, au, av) is None

    def test_vertex_count_mismatch_bails(self):
        g = gen.cycle_graph(4)
        idx = BCCIndex.build(g)
        ng = Graph(5, g.u, g.v)
        assert extend_index(idx, ng, np.array([], np.int64), np.array([], np.int64)) is None

    def test_multiple_chords_one_batch(self):
        g = gen.cycle_graph(8)
        idx = BCCIndex.build(g)
        ng, au, av = apply_add_edges(g, [(0, 4), (1, 5), (2, 6)])
        out = extend_index(idx, ng, au, av)
        assert out is not None
        assert_index_fresh(out)


class TestShrinkIndex:
    def test_remove_bridge(self):
        g = gen.path_graph(5)
        idx = BCCIndex.build(g)
        ng, removed = apply_remove_edges(g, [(1, 2)])
        out = shrink_index(idx, ng, removed, fingerprint=graph_fingerprint(ng))
        assert out is not None and out.source == "shrink"
        assert_index_fresh(out)

    def test_remove_two_bridges(self):
        g = gen.path_graph(6)
        idx = BCCIndex.build(g)
        ng, removed = apply_remove_edges(g, [(0, 1), (4, 5)])
        out = shrink_index(idx, ng, removed)
        assert out is not None
        assert_index_fresh(out)

    def test_remove_cycle_edge_bails(self):
        g = gen.cycle_graph(5)
        idx = BCCIndex.build(g)
        ng, removed = apply_remove_edges(g, [(0, 1)])
        assert shrink_index(idx, ng, removed) is None

    def test_mixed_batch_bails(self):
        # one bridge + one cycle edge: must fall back to a rebuild
        g = Graph(5, [0, 1, 2, 0, 0], [1, 2, 3, 3, 4])  # 4-cycle + pendant 0-4
        idx = BCCIndex.build(g)
        assert np.flatnonzero(idx._is_bridge).size == 1
        ng, removed = apply_remove_edges(g, [(0, 4), (0, 1)])
        assert removed.size == 2
        assert shrink_index(idx, ng, removed) is None


class TestBailOutGuards:
    """The last-line consistency guards must bail to None, never corrupt.

    These exercise the "shouldn't happen" branches directly — a caller
    (or a replayed delta log) handing the patch paths arguments that are
    internally inconsistent with the new graph.
    """

    def test_extend_added_set_mismatch_bails(self):
        # (1, 3) is intra-block (one cycle block) so classification passes,
        # but the graph actually gained (0, 2): the added-key-set guard
        # must catch the disagreement
        g = gen.cycle_graph(5)
        idx = BCCIndex.build(g)
        ng, _, _ = apply_add_edges(g, [(0, 2)])
        out = extend_index(idx, ng,
                           np.array([1], np.int64), np.array([3], np.int64))
        assert out is None

    def test_extend_claimed_add_on_unchanged_graph_bails(self):
        # new_graph == old graph but the delta claims one added edge
        g = gen.cycle_graph(5)
        idx = BCCIndex.build(g)
        out = extend_index(idx, g,
                           np.array([0], np.int64), np.array([2], np.int64))
        assert out is None

    def test_shrink_empty_removed_bails(self):
        g = gen.path_graph(4)
        idx = BCCIndex.build(g)
        assert shrink_index(idx, g, np.zeros(0, np.int64)) is None

    def test_shrink_vertex_count_mismatch_bails(self):
        g = gen.path_graph(4)
        idx = BCCIndex.build(g)
        ng = Graph(5, g.u[:-1], g.v[:-1])
        assert shrink_index(idx, ng, np.array([2], np.int64)) is None

    def test_shrink_edge_count_mismatch_bails(self):
        # removing bridge 0 should leave m-1 edges; handing the unchanged
        # graph as "new" trips the edge-count guard
        g = gen.path_graph(4)
        idx = BCCIndex.build(g)
        assert shrink_index(idx, g, np.array([0], np.int64)) is None
