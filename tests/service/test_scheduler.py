"""Stale-while-revalidate maintenance: coalescing, admission, shutdown.

Everything time-dependent runs on an injected fake clock, so the
coalescing-window and staleness-budget behaviours are exact assertions,
not sleeps: N updates inside one window must cost exactly one queued job
and one snapshot swap; a blown budget must force exactly one inline
rebuild.
"""

import threading

import pytest

from repro.graph import generators as gen
from repro.service.engine import ServiceEngine
from repro.service.scheduler import RebuildScheduler


class FakeClock:
    """Frozen monotonic clock; tests advance it explicitly."""

    def __init__(self, t: float = 100.0):
        self.t = float(t)

    def __call__(self) -> float:
        return self.t

    def advance(self, s: float) -> None:
        self.t += s


def _async_engine(clock, **kw):
    kw.setdefault("rebuild_mode", "async")
    kw.setdefault("coalesce_ms", 50.0)
    kw.setdefault("staleness_budget_ms", None)
    return ServiceEngine(clock=clock, **kw)


class TestSchedulerUnit:
    def test_queue_coalesce_reject(self):
        clk = FakeClock()
        calls = []
        sched = RebuildScheduler(
            lambda name, job: calls.append(name),
            coalesce_s=0.05, max_pending=2, clock=clk,
        )
        try:
            assert sched.schedule("g") == "queued"
            assert sched.schedule("g") == "coalesced"
            assert sched.schedule("h") == "queued"
            assert sched.schedule("i") == "rejected"  # queue full
            assert sched.pending_count == 2
            clk.advance(0.1)  # both windows elapse
            assert sched.drain(timeout=5.0)
            assert sorted(calls) == ["g", "h"]
        finally:
            sched.close()

    def test_cancel_drops_queued_job(self):
        clk = FakeClock()
        calls = []
        with RebuildScheduler(
            lambda name, job: calls.append(name), coalesce_s=0.05, clock=clk
        ) as sched:
            sched.schedule("g")
            assert sched.cancel("g") is True
            assert sched.cancel("g") is False  # already gone
            clk.advance(0.1)
            assert sched.drain(timeout=5.0)
            assert calls == []

    def test_runner_exception_does_not_kill_worker(self):
        clk = FakeClock()
        calls = []

        def runner(name, job):
            calls.append(name)
            if name == "boom":
                raise RuntimeError("build failed")

        with RebuildScheduler(runner, coalesce_s=0.0, clock=clk) as sched:
            sched.schedule("boom")
            assert sched.drain(timeout=5.0)
            assert sched.alive
            sched.schedule("ok")
            assert sched.drain(timeout=5.0)
            assert calls == ["boom", "ok"]

    def test_closed_scheduler_refuses_work(self):
        sched = RebuildScheduler(lambda name, job: None)
        sched.close()
        sched.close()  # idempotent
        assert not sched.alive
        with pytest.raises(RuntimeError):
            sched.schedule("g")


class TestCoalescing:
    def test_update_burst_is_one_rebuild_one_swap(self):
        clk = FakeClock()
        with _async_engine(clk) as eng:
            eng.put_graph("g", gen.cycle_graph(16))
            assert eng.query("g", "num_components") == 1
            # five updates inside one 50 ms coalescing window
            for i in range(5):
                eng.remove_edges("g", [(i, i + 1)])
            st = eng.stats
            assert st.rebuilds_queued == 1
            assert st.rebuild_swaps == 0  # window still open
            clk.advance(0.1)
            assert eng.drain(timeout=10.0)
            st = eng.stats
            assert st.rebuilds_queued == 1  # the burst coalesced
            assert st.rebuild_swaps == 1  # one atomic snapshot install
            assert st.rebuilds == 2  # initial build + one background build
            # the swap reached the newest content: fresh, correct answer
            assert eng.staleness_ms("g") == 0.0
            assert eng.query("g", "num_components") == 11
            assert eng.stats.forced_syncs == 0

    def test_stale_serve_then_swap(self):
        clk = FakeClock()
        with _async_engine(clk) as eng:
            eng.put_graph("g", gen.cycle_graph(16))
            eng.query("g", "num_components")
            eng.remove_edges("g", [(0, 1)])
            # window open: queries serve the old (1-component) snapshot
            assert eng.query("g", "num_components") == 1
            assert eng.stats.stale_hits == 1
            clk.advance(0.1)
            assert eng.drain(timeout=10.0)
            assert eng.query("g", "num_components") == 15
            assert eng.stats.rebuild_swaps == 1

    def test_revert_cancels_scheduled_rebuild(self):
        clk = FakeClock()
        with _async_engine(clk) as eng:
            eng.put_graph("g", gen.cycle_graph(16))
            eng.query("g", "num_components")
            eng.remove_edges("g", [(0, 1)])
            eng.add_edges("g", [(0, 1)])  # back to the snapshot's content
            assert eng.staleness_ms("g") == 0.0
            clk.advance(0.1)
            assert eng.drain(timeout=10.0)
            st = eng.stats
            assert st.rebuild_swaps == 0  # nothing to revalidate
            assert st.rebuilds == 1  # only the initial build
            assert eng.query("g", "num_components") == 1

    def test_fresh_query_supersedes_queued_job(self):
        clk = FakeClock()
        with _async_engine(clk) as eng:
            eng.put_graph("g", gen.cycle_graph(16))
            eng.query("g", "num_components")
            eng.remove_edges("g", [(0, 1)])
            # an exact query resolves inline and cancels the queued job
            assert eng.query("g", "num_components", freshness="fresh") == 15
            clk.advance(0.1)
            assert eng.drain(timeout=10.0)
            assert eng.stats.rebuild_swaps == 0


class TestAdmissionAndBudget:
    def test_blown_staleness_budget_forces_sync(self):
        clk = FakeClock()
        with _async_engine(
            clk, coalesce_ms=10_000.0, staleness_budget_ms=100.0
        ) as eng:
            eng.put_graph("g", gen.cycle_graph(16))
            eng.query("g", "num_components")
            eng.remove_edges("g", [(0, 1)])
            clk.advance(0.2)  # 200 ms stale > 100 ms budget
            assert eng.query("g", "num_components") == 15  # exact, inline
            st = eng.stats
            assert st.forced_syncs == 1
            assert st.stale_hits == 0
            assert st.rebuild_swaps == 0  # the queued job was superseded

    def test_within_budget_serves_stale(self):
        clk = FakeClock()
        with _async_engine(
            clk, coalesce_ms=10_000.0, staleness_budget_ms=100.0
        ) as eng:
            eng.put_graph("g", gen.cycle_graph(16))
            eng.query("g", "num_components")
            eng.remove_edges("g", [(0, 1)])
            clk.advance(0.05)  # 50 ms stale < 100 ms budget
            assert eng.query("g", "num_components") == 1  # stale snapshot
            st = eng.stats
            assert st.stale_hits == 1
            assert st.forced_syncs == 0
            assert st.max_staleness_ms == pytest.approx(50.0)

    def test_admission_rejects_but_keeps_serving(self):
        clk = FakeClock()
        with _async_engine(clk, max_pending_rebuilds=0) as eng:
            eng.put_graph("g", gen.cycle_graph(16))
            eng.query("g", "num_components")
            eng.remove_edges("g", [(0, 1)])  # schedule -> rejected
            assert eng.query("g", "num_components") == 1  # stale, still served
            st = eng.stats
            assert st.rebuilds_rejected >= 1
            assert st.rebuilds_queued == 0


class TestLifecycle:
    def test_close_joins_worker_thread(self):
        eng = _async_engine(FakeClock())
        eng.put_graph("g", gen.cycle_graph(8))
        eng.query("g", "num_components")
        assert any(
            t.name == "repro-rebuild-scheduler" for t in threading.enumerate()
        )
        eng.close()
        eng.close()  # idempotent
        assert not eng._scheduler.alive
        assert not any(
            t.name == "repro-rebuild-scheduler" for t in threading.enumerate()
        )

    def test_sync_engine_has_no_worker(self):
        eng = ServiceEngine()
        assert eng._scheduler is None
        eng.close()  # no-op, must not raise

    def test_async_rejects_simulated_machine(self):
        from repro.smp import e4500

        with pytest.raises(ValueError):
            ServiceEngine(machine=e4500(4), rebuild_mode="async")

    def test_rebuild_wall_is_measured_both_modes(self):
        with ServiceEngine() as sync_eng:
            sync_eng.put_graph("g", gen.cycle_graph(64))
            sync_eng.query("g", "num_components")
            assert sync_eng.stats.rebuild_wall_s > 0.0
        clk = FakeClock()
        with _async_engine(clk, coalesce_ms=0.0) as eng:
            eng.put_graph("g", gen.cycle_graph(64))
            eng.query("g", "num_components")
            eng.remove_edges("g", [(0, 1)])
            clk.advance(0.1)
            assert eng.drain(timeout=10.0)
            assert eng.stats.rebuild_swaps == 1
            assert eng.stats.rebuild_wall_s > 0.0
            eng.reset_stats()
            assert eng.stats.rebuild_wall_s == 0.0
