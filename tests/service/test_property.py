"""Property test: BCCIndex answers match brute-force recomputation.

A hypothesis rule-based machine drives a :class:`ServiceEngine` through
randomized add/remove batches; after every step the full query surface —
``same_bcc``, ``is_articulation``, ``is_bridge``, ``component_of_edge``,
``num_components`` — must agree with a from-scratch sequential Tarjan run
plus a fresh block-cut tree (:func:`repro.service.driver.oracle_answer`).
This is the ground truth for the engine's cache/replay machinery: whatever
path produced the served index (full build, incremental extend/shrink,
LRU hit after a revert), the answers must be indistinguishable.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.tarjan import tarjan_bcc
from repro.graph import generators as gen
from repro.service.engine import ServiceEngine

N = 12  # small vertex count keeps the Tarjan oracle cheap over many steps

pair = st.tuples(st.integers(0, N - 1), st.integers(0, N - 1))


class ServiceOracleMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 2**16))
    def start(self, seed):
        self.engine = ServiceEngine(cache_size=3)
        self.engine.put_graph("g", gen.random_gnm(N, 14, seed=seed))

    @rule(batch=st.lists(pair, min_size=1, max_size=4))
    def add_edges(self, batch):
        self.engine.add_edges("g", batch)

    @rule(batch=st.lists(pair, min_size=1, max_size=4))
    def remove_edges(self, batch):
        self.engine.remove_edges("g", batch)

    @rule(data=st.data())
    def remove_existing_edge(self, data):
        # target a real edge so removals (bridges included) actually happen
        g = self.engine.graph("g")
        if g.m:
            i = data.draw(st.integers(0, g.m - 1))
            self.engine.remove_edges("g", [(int(g.u[i]), int(g.v[i]))])

    @invariant()
    def every_query_matches_recompute(self):
        eng = self.engine
        g = eng.graph("g")
        res = tarjan_bcc(g)
        assert eng.query("g", "num_components") == res.num_components
        cuts = set(res.articulation_points().tolist())
        for v in range(N):
            assert eng.query("g", "is_articulation", v=v) == (v in cuts)
        bridges = set(res.bridges().tolist())
        for i, (u, v) in enumerate(g.edges().tolist()):
            assert eng.query("g", "is_bridge", u=u, v=v) == (i in bridges)
            assert eng.query("g", "component_of_edge", u=u, v=v) == int(res.edge_labels[i])
        for u in range(N):
            blocks_u = res.blocks_of_vertex(u)
            for v in range(u, N):
                expect = bool(np.intersect1d(blocks_u, res.blocks_of_vertex(v)).size)
                assert eng.query("g", "same_bcc", u=u, v=v) == expect, (u, v)


ServiceOracleMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=10, deadline=None
)
TestServiceOracle = ServiceOracleMachine.TestCase
