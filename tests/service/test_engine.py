"""Tests for the ServiceEngine: caching, lazy updates, stats, simulation."""

import pytest

from repro.core.tarjan import tarjan_bcc
from repro.graph import generators as gen
from repro.service.driver import oracle_answer
from repro.service.engine import MAX_PENDING_DELTAS, ServiceEngine
from repro.smp import e4500


def fresh_engine(**kw) -> ServiceEngine:
    eng = ServiceEngine(**kw)
    eng.put_graph("g", gen.cycle_graph(8))
    return eng


class TestQueries:
    def test_answers_match_oracle(self):
        eng = ServiceEngine()
        g = gen.random_gnm(40, 70, seed=4)
        eng.put_graph("g", g)
        res = tarjan_bcc(g)
        assert eng.query("g", "num_components") == res.num_components
        for v in range(g.n):
            op = {"op": "is_articulation", "v": v}
            assert eng.query("g", "is_articulation", v=v) == oracle_answer(res, op)
        for u, v in g.edges().tolist()[:20]:
            assert eng.query("g", "is_bridge", u=u, v=v) == oracle_answer(
                res, {"op": "is_bridge", "u": u, "v": v}
            )

    def test_unknown_query_op(self):
        eng = fresh_engine()
        with pytest.raises(ValueError, match="unknown query op"):
            eng.query("g", "shortest_path", u=0, v=1)

    def test_unknown_graph(self):
        eng = ServiceEngine()
        with pytest.raises(KeyError, match="no graph named"):
            eng.query("nope", "num_components")

    def test_bad_cache_size(self):
        with pytest.raises(ValueError, match="cache_size"):
            ServiceEngine(cache_size=0)


class TestCache:
    def test_repeat_query_hits(self):
        eng = fresh_engine()
        eng.query("g", "num_components")
        eng.query("g", "is_articulation", v=0)
        st = eng.stats
        assert st.cache_misses == 1 and st.cache_hits == 1 and st.rebuilds == 1

    def test_noop_update_keeps_cache(self):
        eng = fresh_engine()
        eng.query("g", "num_components")
        assert eng.add_edges("g", [(0, 1)]) == 0  # already an edge
        assert eng.remove_edges("g", [(0, 4)]) == 0  # not an edge
        eng.query("g", "num_components")
        st = eng.stats
        assert st.noop_updates == 2
        assert st.rebuilds == 1 and st.cache_hits == 1  # no recompute

    def test_revert_rehits_cache(self):
        eng = fresh_engine()
        eng.query("g", "num_components")
        assert eng.add_edges("g", [(0, 3)]) == 1
        assert eng.remove_edges("g", [(0, 3)]) == 1
        # content reverted -> original fingerprint -> cached index reused
        eng.query("g", "num_components")
        st = eng.stats
        assert st.rebuilds == 1 and st.cache_hits == 1
        assert st.incremental_extensions == 0

    def test_eviction(self):
        eng = ServiceEngine(cache_size=1)
        eng.put_graph("a", gen.cycle_graph(5))
        eng.put_graph("b", gen.path_graph(5))
        eng.query("a", "num_components")
        eng.query("b", "num_components")
        eng.query("a", "num_components")  # evicted, rebuilt
        st = eng.stats
        assert st.evictions >= 2 and st.rebuilds == 3 and st.cache_hits == 0

    def test_same_content_two_names_shares_index(self):
        eng = ServiceEngine()
        eng.put_graph("a", gen.cycle_graph(6))
        eng.put_graph("b", gen.cycle_graph(6))
        eng.query("a", "num_components")
        eng.query("b", "num_components")
        assert eng.stats.rebuilds == 1 and eng.stats.cache_hits == 1


class TestLazyUpdates:
    def test_updates_coalesce_into_one_resolution(self):
        eng = fresh_engine()
        eng.query("g", "num_components")
        eng.add_edges("g", [(0, 2)])
        eng.add_edges("g", [(1, 3)])
        assert eng.stats.rebuilds == 1  # nothing recomputed yet (lazy)
        assert eng.query("g", "num_components") == 1
        st = eng.stats
        # both chords lie inside the cycle's single block -> extended, not rebuilt
        assert st.rebuilds == 1 and st.incremental_extensions == 2

    def test_cross_block_add_forces_rebuild(self):
        eng = ServiceEngine()
        eng.put_graph("g", gen.path_graph(6))
        assert eng.query("g", "num_components") == 5
        eng.add_edges("g", [(0, 5)])  # joins all blocks into one cycle
        assert eng.query("g", "num_components") == 1
        st = eng.stats
        assert st.rebuilds == 2 and st.incremental_extensions == 0

    def test_bridge_removal_shrinks(self):
        eng = ServiceEngine()
        eng.put_graph("g", gen.path_graph(5))
        eng.query("g", "num_components")
        eng.remove_edges("g", [(2, 3)])
        assert eng.query("g", "num_components") == 3
        st = eng.stats
        assert st.rebuilds == 1 and st.incremental_extensions == 1

    def test_non_bridge_removal_rebuilds(self):
        eng = fresh_engine()
        eng.query("g", "num_components")
        eng.remove_edges("g", [(0, 1)])  # cycle edge: blocks restructure
        assert eng.query("g", "num_components") == 7  # cycle -> path
        assert eng.stats.rebuilds == 2

    def test_update_before_first_query(self):
        eng = fresh_engine()
        eng.add_edges("g", [(0, 4)])  # no cached base to extend from
        assert eng.query("g", "num_components") == 1
        assert eng.stats.rebuilds == 1

    def test_pending_overflow_forces_rebuild(self):
        eng = ServiceEngine()
        eng.put_graph("g", gen.complete_graph(10))
        eng.query("g", "num_components")
        for i in range(MAX_PENDING_DELTAS + 3):
            # alternate removing/adding one clique edge: every op is effective;
            # odd total -> final state differs from the cached original
            if i % 2 == 0:
                eng.remove_edges("g", [(0, 1)])
            else:
                eng.add_edges("g", [(0, 1)])
        assert eng.query("g", "num_components") == 1  # K10 - 1 edge: biconnected
        assert eng.stats.rebuilds == 2  # chain dropped, single rebuild

    def test_put_graph_replace_clears_pending(self):
        eng = fresh_engine()
        eng.query("g", "num_components")
        eng.add_edges("g", [(0, 2)])
        eng.put_graph("g", gen.path_graph(3))
        assert eng.query("g", "num_components") == 2
        assert eng.stats.incremental_extensions == 0

    def test_correct_after_many_mixed_updates(self):
        eng = ServiceEngine(algorithm="tv-filter")
        g = gen.random_connected_gnm(30, 45, seed=9)
        eng.put_graph("g", g)
        import numpy as np

        rng = np.random.default_rng(1)
        for _ in range(12):
            pairs = rng.integers(0, 30, size=(3, 2)).tolist()
            if rng.random() < 0.5:
                eng.add_edges("g", pairs)
            else:
                eng.remove_edges("g", pairs)
            cur = eng.graph("g")
            res = tarjan_bcc(cur)
            assert eng.query("g", "num_components") == res.num_components
            v = int(rng.integers(0, 30))
            assert eng.query("g", "is_articulation", v=v) == oracle_answer(
                res, {"op": "is_articulation", "v": v}
            )


class TestApplyAndStats:
    def test_apply_dispatch(self):
        eng = fresh_engine()
        assert eng.apply("g", {"op": "num_components"}) == 1
        assert eng.apply("g", {"op": "same_bcc", "u": 0, "v": 1}) is True
        assert eng.apply("g", {"op": "add_edges", "edges": [[0, 2]]}) == 1
        assert eng.apply("g", {"op": "remove_edges", "edges": [[0, 2]]}) == 1
        with pytest.raises(ValueError, match="unknown workload op"):
            eng.apply("g", {"op": "compact"})

    def test_stats_counters_and_reset(self):
        eng = fresh_engine()
        eng.query("g", "num_components")
        eng.query("g", "is_articulation", v=1)
        eng.add_edges("g", [(0, 2)])
        st = eng.stats
        assert st.queries == 2 and st.updates == 1
        assert st.per_op == {"num_components": 1, "is_articulation": 1}
        d = st.as_dict()
        assert d["cache_hit_rate"] == st.cache_hit_rate
        eng.reset_stats()
        assert eng.stats.queries == 0

    def test_hit_rate_empty(self):
        assert ServiceEngine().stats.cache_hit_rate == 0.0


class TestSimulatedMachine:
    def test_regions_charged(self):
        eng = ServiceEngine(machine=e4500(4))
        eng.put_graph("g", gen.cycle_graph(64))
        eng.query("g", "num_components")
        eng.add_edges("g", [(0, 10)])
        eng.query("g", "same_bcc", u=0, v=10)
        regions = eng.machine.report().region_times_s()
        assert regions.get("Service-build", 0) > 0
        assert regions.get("Service-extend", 0) > 0
        assert regions.get("Service-query", 0) > 0
        assert eng.machine.time_s > 0
