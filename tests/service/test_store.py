"""Tests for the named graph store and content fingerprints."""

import numpy as np
import pytest

from repro.graph import Graph, generators as gen
from repro.graph.io import write_edgelist
from repro.service.store import (
    GRAPH_FAMILIES,
    GraphStore,
    graph_fingerprint,
    make_graph,
)


class TestFingerprint:
    def test_content_addressed(self):
        # same edge set, different construction order -> same hash
        a = Graph(4, [0, 1, 2], [1, 2, 3])
        b = Graph(4, [2, 0, 1], [3, 1, 2])
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_sensitive_to_edges(self):
        a = Graph(4, [0, 1], [1, 2])
        b = Graph(4, [0, 1], [1, 3])
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_sensitive_to_vertex_count(self):
        # same edges, one extra isolated vertex
        a = Graph(3, [0, 1], [1, 2])
        b = Graph(4, [0, 1], [1, 2])
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_empty_graphs_distinct(self):
        assert graph_fingerprint(Graph(0, [], [])) != graph_fingerprint(Graph(1, [], []))


class TestGraphStore:
    def test_put_get_entry(self):
        store = GraphStore()
        g = gen.cycle_graph(5)
        entry = store.put("c5", g)
        assert entry.name == "c5" and entry.version == 1
        assert entry.n == 5 and entry.m == 5
        assert store.get("c5") is g
        assert "c5" in store and len(store) == 1
        assert store.names() == ["c5"]

    def test_put_duplicate_name_errors(self):
        store = GraphStore()
        store.put("g", gen.cycle_graph(3))
        with pytest.raises(KeyError, match="already stored"):
            store.put("g", gen.cycle_graph(4))

    def test_replace_bumps_version(self):
        store = GraphStore()
        store.put("g", gen.cycle_graph(3))
        entry = store.replace("g", gen.cycle_graph(4))
        assert entry.version == 2
        assert store.get("g").n == 4

    def test_replace_with_same_content_same_fingerprint(self):
        store = GraphStore()
        e1 = store.put("g", gen.cycle_graph(3))
        e2 = store.replace("g", gen.cycle_graph(3))
        assert e1.fingerprint == e2.fingerprint and e2.version == 2

    def test_missing_name_errors(self):
        store = GraphStore()
        with pytest.raises(KeyError, match="no graph named"):
            store.get("nope")

    def test_remove(self):
        store = GraphStore()
        store.put("g", gen.cycle_graph(3))
        store.remove("g")
        assert "g" not in store and len(store) == 0
        with pytest.raises(KeyError):
            store.remove("g")

    def test_load_from_file(self, tmp_path):
        g = gen.random_connected_gnm(20, 40, seed=3)
        path = tmp_path / "g.edges"
        write_edgelist(g, path)
        store = GraphStore()
        entry = store.load("disk", str(path))
        assert entry.fingerprint == graph_fingerprint(g)

    def test_generate(self):
        store = GraphStore()
        entry = store.generate("r", "connected-gnm", 30, m=60, seed=1)
        assert entry.n == 30 and entry.m == 60


class TestMakeGraph:
    @pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
    def test_every_family_instantiates(self, family):
        g = make_graph(family, 16, m=32, seed=2)
        assert g.n >= 1 and g.m >= 0
        if g.m:
            assert bool((g.u < g.v).all())  # canonical edges

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown graph family"):
            make_graph("hypercube", 8)

    def test_deterministic(self):
        a = make_graph("gnm", 50, m=100, seed=7)
        b = make_graph("gnm", 50, m=100, seed=7)
        np.testing.assert_array_equal(a.u, b.u)
        np.testing.assert_array_equal(a.v, b.v)
