"""Tests for the per-graph write-ahead delta log."""

import numpy as np
import pytest

from repro.graph import Graph, generators as gen
from repro.service.deltalog import (
    CLASSIFICATIONS,
    MAX_PENDING_DELTAS,
    DeltaEntry,
    DeltaLog,
    classify_add,
    classify_remove,
)
from repro.service.index import BCCIndex
from repro.service.updates import apply_add_edges


def _entry(kind: str, fingerprint: str, version: int, edges: int = 1,
           classification: str = "unknown") -> DeltaEntry:
    """A structurally valid entry; the log never inspects the graph."""
    return DeltaEntry(
        kind=kind,
        graph_after=gen.path_graph(3),
        fingerprint_after=fingerprint,
        version=version,
        applies_to=version - 1,
        a=np.zeros(edges, dtype=np.int64),
        b=np.zeros(edges, dtype=np.int64),
        classification=classification,
    )


class TestClassify:
    def test_add_intra_block(self):
        idx = BCCIndex.build(gen.cycle_graph(6))
        assert classify_add(idx, [0], [3]) == "intra-block"

    def test_add_cross_block(self):
        # every path edge is its own block, so (0, 2) joins two blocks
        idx = BCCIndex.build(gen.path_graph(4))
        assert classify_add(idx, [0], [2]) == "cross-block"

    def test_add_mixed_batch_is_cross_block(self):
        g = gen.cycle_graph(4)
        idx = BCCIndex.build(Graph(6, np.append(g.u, 3), np.append(g.v, 4)))
        # (0, 2) is intra-block, but (4, 5)... 5 is isolated: no common block
        assert classify_add(idx, [0, 4], [2, 5]) == "cross-block"

    def test_remove_bridge(self):
        idx = BCCIndex.build(gen.path_graph(4))
        assert classify_remove(idx, [0]) == "bridge"

    def test_remove_structural(self):
        idx = BCCIndex.build(gen.cycle_graph(4))
        assert classify_remove(idx, [0]) == "structural"

    def test_remove_empty_is_structural(self):
        idx = BCCIndex.build(gen.path_graph(3))
        assert classify_remove(idx, np.zeros(0, np.int64)) == "structural"


class TestDeltaEntry:
    def test_rejects_unknown_classification(self):
        with pytest.raises(ValueError, match="classification"):
            _entry("add", "f1", 2, classification="bogus")

    def test_size_counts_payload_edges(self):
        assert _entry("add", "f1", 2, edges=3).size == 3

    def test_all_classifications_constructible(self):
        for c in CLASSIFICATIONS:
            assert _entry("add", "f1", 2, classification=c).classification == c


class TestDeltaLogAppend:
    def test_append_moves_head_and_ticks_version(self):
        log = DeltaLog("g", "base", 1)
        assert log.version == 0 and log.head_fingerprint == "base"
        log.append(_entry("add", "f1", 2))
        log.append(_entry("add", "f2", 3))
        assert len(log) == 2 and log.depth == 2
        assert log.head_fingerprint == "f2" and log.head_version == 3
        assert log.base_fingerprint == "base" and log.base_version == 1
        assert log.version == 2
        assert log.classifications() == ("unknown", "unknown")

    def test_patch_edges_sums_entry_sizes(self):
        log = DeltaLog("g", "base", 1)
        log.append(_entry("add", "f1", 2, edges=3))
        log.append(_entry("remove", "f2", 3, edges=2))
        assert log.patch_edges() == 5

    def test_overflow_breaks_chain(self):
        log = DeltaLog("g", "base", 1, max_entries=3)
        for i in range(4):
            log.append(_entry("add", f"f{i}", i + 2))
        assert log.broken and len(log) == 0 and log.truncations == 1
        # head still tracks newest content for the healing rebuild
        assert log.head_fingerprint == "f3"
        assert log.entries_through("f3") is None

    def test_default_cap_is_module_constant(self):
        assert DeltaLog("g", "base", 1).max_entries == MAX_PENDING_DELTAS


class TestEntriesThrough:
    def test_prefix_to_fingerprint(self):
        log = DeltaLog("g", "base", 1)
        for i in range(3):
            log.append(_entry("add", f"f{i}", i + 2))
        chain = log.entries_through("f1")
        assert [e.fingerprint_after for e in chain] == ["f0", "f1"]

    def test_none_for_empty_or_off_chain(self):
        log = DeltaLog("g", "base", 1)
        assert log.entries_through("base") is None
        log.append(_entry("add", "f0", 2))
        assert log.entries_through("nope") is None


class TestCatchUp:
    def test_mid_chain_drops_applied_prefix(self):
        log = DeltaLog("g", "base", 1)
        for i in range(3):
            log.append(_entry("add", f"f{i}", i + 2))
        log.catch_up("f0", 2)
        assert len(log) == 2
        assert log.base_fingerprint == "f0" and log.base_version == 2
        assert [e.fingerprint_after for e in log.entries()] == ["f1", "f2"]

    def test_head_drains_everything(self):
        log = DeltaLog("g", "base", 1)
        log.append(_entry("add", "f0", 2))
        log.append(_entry("add", "f1", 3))
        log.catch_up("f1", 3)
        assert len(log) == 0 and not log.broken
        assert log.base_fingerprint == "f1" == log.head_fingerprint

    def test_off_chain_content_rebases(self):
        log = DeltaLog("g", "base", 1)
        log.append(_entry("add", "f0", 2))
        log.catch_up("reverted", 5)  # e.g. a replace() to older content
        assert len(log) == 0
        assert log.base_fingerprint == "reverted" and log.base_version == 5

    def test_broken_stays_broken_until_head(self):
        log = DeltaLog("g", "base", 1, max_entries=1)
        log.append(_entry("add", "f0", 2))
        log.append(_entry("add", "f1", 3))  # overflow: broken, head=f1
        assert log.broken
        log.catch_up("f0", 2)  # stale build finishing late: not the head
        assert log.broken
        log.catch_up("f1", 3)  # full rebuild of the head heals the log
        assert not log.broken
        assert log.base_fingerprint == "f1"

    def test_catch_up_ticks_version(self):
        log = DeltaLog("g", "base", 1)
        log.append(_entry("add", "f0", 2))
        v = log.version
        log.catch_up("f0", 2)
        assert log.version == v + 1


class TestRealChain:
    def test_chain_from_real_updates(self):
        from repro.service.store import graph_fingerprint

        g0 = gen.cycle_graph(6)
        idx = BCCIndex.build(g0)
        log = DeltaLog("g", graph_fingerprint(g0), 1)
        g1, au, av = apply_add_edges(g0, [(0, 2)])
        log.append(DeltaEntry(
            kind="add", graph_after=g1,
            fingerprint_after=graph_fingerprint(g1), version=2, applies_to=1,
            a=au, b=av, classification=classify_add(idx, au, av),
        ))
        assert log.classifications() == ("intra-block",)
        chain = log.entries_through(graph_fingerprint(g1))
        assert chain is not None and chain[0].graph_after is g1
