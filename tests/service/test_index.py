"""Tests for the BCC point-query index against brute-force oracles."""

import numpy as np
import pytest

from repro import ALGORITHMS
from repro.core.blockcut import BlockCutTree
from repro.core.tarjan import tarjan_bcc
from repro.graph import Graph, generators as gen
from repro.service.driver import oracle_answer
from repro.service.index import BCCIndex
from tests.conftest import nx_articulation_points, nx_bridges
from tests.strategies import graph_corpus


def exhaustive_check(g: Graph, idx: BCCIndex) -> None:
    """Every point query must match the from-scratch oracle."""
    res = tarjan_bcc(g)
    assert idx.num_components() == res.num_components
    for v in range(g.n):
        assert idx.is_articulation(v) == oracle_answer(res, {"op": "is_articulation", "v": v})
    for u, v in g.edges().tolist():
        assert idx.is_bridge(u, v) == oracle_answer(res, {"op": "is_bridge", "u": u, "v": v})
        assert idx.component_of_edge(u, v) == oracle_answer(
            res, {"op": "component_of_edge", "u": u, "v": v}
        )
    rng = np.random.default_rng(0)
    pairs = rng.integers(0, max(g.n, 1), size=(min(60, g.n * g.n), 2))
    for u, v in pairs.tolist():
        op = {"op": "same_bcc", "u": u, "v": v}
        assert idx.same_bcc(u, v) == oracle_answer(res, op), (u, v)
        # non-edges are never bridges and have no component
        if idx.edge_id(u, v) is None:
            assert not idx.is_bridge(u, v)
            assert idx.component_of_edge(u, v) is None


@pytest.mark.parametrize("label,g", graph_corpus(), ids=lambda x: x if isinstance(x, str) else "")
def test_corpus_queries_match_oracle(label, g):
    if g.n == 0:
        idx = BCCIndex.build(g)
        assert idx.num_components() == 0
        return
    exhaustive_check(g, BCCIndex.build(g))


def test_aggregates_match_networkx():
    g = gen.cliques_on_a_path(4, 5)[0]
    idx = BCCIndex.build(g)
    assert idx.num_articulation_points() == nx_articulation_points(g).size
    assert idx.num_bridges() == nx_bridges(g).size
    sizes = idx.result.component_sizes()
    assert idx.largest_block_edges() == int(sizes.max())


def test_all_algorithms_build_identical_indexes():
    g = gen.random_gnm(80, 160, seed=5)
    base = BCCIndex.build(g, algorithm="sequential")
    for name in sorted(ALGORITHMS):
        idx = BCCIndex.build(g, algorithm=name)
        np.testing.assert_array_equal(idx.result.edge_labels, base.result.edge_labels)
        np.testing.assert_array_equal(idx._is_art, base._is_art)
        np.testing.assert_array_equal(idx._is_bridge, base._is_bridge)


def test_edge_id():
    g = Graph(5, [0, 0, 2], [1, 3, 4])
    idx = BCCIndex.build(g)
    assert idx.edge_id(0, 1) == 0
    assert idx.edge_id(1, 0) == 0  # orientation-insensitive
    assert idx.edge_id(4, 2) == 2
    assert idx.edge_id(1, 2) is None
    assert idx.edge_id(0, 0) is None


def test_vertex_out_of_range():
    idx = BCCIndex.build(gen.cycle_graph(4))
    with pytest.raises(IndexError, match="out of range"):
        idx.is_articulation(4)
    with pytest.raises(IndexError):
        idx.same_bcc(0, -1)


def test_blocks_of():
    # path 0-1-2: vertex 1 is the cut vertex in both blocks
    idx = BCCIndex.build(gen.path_graph(3))
    assert idx.blocks_of(0).tolist() == [0]
    assert sorted(idx.blocks_of(1).tolist()) == [0, 1]
    assert idx.same_bcc(0, 1) and not idx.same_bcc(0, 2)


def test_same_bcc_isolated_and_self():
    g = Graph(3, [0], [1])  # vertex 2 isolated
    idx = BCCIndex.build(g)
    assert idx.same_bcc(0, 0)  # has an incident edge
    assert not idx.same_bcc(2, 2)  # isolated
    assert not idx.same_bcc(0, 2)


def test_block_cut_lazy_and_cached():
    idx = BCCIndex.build(gen.path_graph(5))
    assert idx._bct is None
    bct = idx.block_cut()
    assert isinstance(bct, BlockCutTree)
    assert idx.block_cut() is bct


def test_source_and_repr():
    idx = BCCIndex.build(gen.cycle_graph(5))
    assert idx.source == "build"
    assert "blocks=1" in repr(idx)
