"""Tests for the maintenance-strategy registry and engine accounting."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.service import updates as upd
from repro.service.deltalog import DeltaEntry, DeltaLog
from repro.service.engine import ServiceEngine
from repro.service.index import BCCIndex
from repro.service.maintenance import (
    MAINTENANCE_MODES,
    PATCH_OPS,
    STRATEGIES,
    MaintenancePlan,
    _runs,
    apply_plan,
    plan_maintenance,
    predict_full_cost_s,
    predict_patch_cost_s,
)
from repro.service.store import graph_fingerprint
from repro.service.updates import apply_add_edges, apply_remove_edges
from repro.smp import VECTORIZED_HOST


def _add_entry(idx_before, g_before, pairs, version):
    """A real add DeltaEntry, classified against the pre-update index."""
    from repro.service.deltalog import classify_add

    g_after, au, av = apply_add_edges(g_before, pairs)
    return g_after, DeltaEntry(
        kind="add",
        graph_after=g_after,
        fingerprint_after=graph_fingerprint(g_after),
        version=version,
        applies_to=version - 1,
        a=au,
        b=av,
        classification=classify_add(idx_before, au, av),
    )


def _remove_entry(idx_before, g_before, pairs, version):
    from repro.service.deltalog import classify_remove

    g_after, removed = apply_remove_edges(g_before, pairs)
    return g_after, DeltaEntry(
        kind="remove",
        graph_after=g_after,
        fingerprint_after=graph_fingerprint(g_after),
        version=version,
        applies_to=version - 1,
        a=removed,
        b=np.zeros(0, np.int64),
        classification=classify_remove(idx_before, removed),
    )


def _chain(g0, steps):
    """Build (log, final_graph, base_index) from ('add'|'remove', pairs) steps.

    Every entry is classified against the *base* index, like an engine
    whose cache holds only the chain base.
    """
    idx = BCCIndex.build(g0)
    log = DeltaLog("g", graph_fingerprint(g0), 1)
    g = g0
    for i, (kind, pairs) in enumerate(steps):
        if kind == "add":
            g, e = _add_entry(idx, g, pairs, i + 2)
        else:
            g, e = _remove_entry(idx, g, pairs, i + 2)
        log.append(e)
    return log, g, idx


def _stored(g):
    """Stand-in for a StoredGraph: plan_maintenance reads .graph/.fingerprint."""
    return SimpleNamespace(graph=g, fingerprint=graph_fingerprint(g))


class TestRuns:
    def test_adds_coalesce_removes_stay_single(self):
        es = [SimpleNamespace(kind=k) for k in
              ["add", "add", "remove", "remove", "add"]]
        runs = _runs(es)
        assert [(k, len(r)) for k, r in runs] == [
            ("add", 2), ("remove", 1), ("remove", 1), ("add", 1)]

    def test_order_preserved(self):
        es = [SimpleNamespace(kind=k, tag=i)
              for i, k in enumerate(["add", "remove", "add", "add"])]
        runs = _runs(es)
        assert [e.tag for _, run in runs for e in run] == [0, 1, 2, 3]


class TestPredictCosts:
    def test_patch_cost_prices_one_sweep_per_run(self):
        es = [
            SimpleNamespace(kind="add", graph_after=SimpleNamespace(m=90)),
            SimpleNamespace(kind="add", graph_after=SimpleNamespace(m=100)),
            SimpleNamespace(kind="remove", graph_after=SimpleNamespace(m=95)),
        ]
        per_op = VECTORIZED_HOST.op_cost_ns(PATCH_OPS)
        # the add run costs one sweep over its FINAL edge list (m=100)
        assert predict_patch_cost_s(es) == pytest.approx(
            (100 + 95) * per_op * 1e-9)

    def test_full_cost_positive_and_handles_unmodelled_names(self):
        assert predict_full_cost_s("tv-filter", 1000, 2000) > 0
        assert predict_full_cost_s("fastsv", 1000, 2000) > 0
        assert predict_full_cost_s("auto", 1000, 2000) > 0


class TestPlanMaintenance:
    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="maintenance mode"):
            plan_maintenance("bogus", None, _stored(gen.cycle_graph(4)),
                             lambda fp: None)

    def test_mode_full_forces_rebuild(self):
        log, g, idx = _chain(gen.cycle_graph(8), [("add", [(0, 2)])])
        plan = plan_maintenance("full", log, _stored(g), lambda fp: idx)
        assert plan.strategy == "full" and not plan.incremental
        assert "forces" in plan.reason
        assert plan.patch_edges == 1  # pending work is still reported

    def test_no_log_full(self):
        plan = plan_maintenance("auto", None, _stored(gen.cycle_graph(4)),
                                lambda fp: None)
        assert plan.strategy == "full" and "no delta chain" in plan.reason

    def test_broken_log_full(self):
        log, g, idx = _chain(gen.cycle_graph(8), [("add", [(0, 2)])])
        log.broken = True
        plan = plan_maintenance("auto", log, _stored(g), lambda fp: idx)
        assert plan.strategy == "full" and "overflowed" in plan.reason

    def test_chain_not_reaching_content_full(self):
        log, _, idx = _chain(gen.cycle_graph(8), [("add", [(0, 2)])])
        plan = plan_maintenance("auto", log, _stored(gen.path_graph(9)),
                                lambda fp: idx)
        assert plan.strategy == "full" and "does not reach" in plan.reason

    def test_no_base_index_full(self):
        log, g, _ = _chain(gen.cycle_graph(8), [("add", [(0, 2)])])
        plan = plan_maintenance("auto", log, _stored(g), lambda fp: None)
        assert plan.strategy == "full" and "no materialized index" in plan.reason

    def test_intra_block_adds_extend(self):
        log, g, idx = _chain(gen.cycle_graph(8),
                             [("add", [(0, 2)]), ("add", [(1, 5)])])
        plan = plan_maintenance("auto", log, _stored(g), lambda fp: idx)
        assert plan.strategy == "incremental-extend" and plan.incremental
        assert len(plan.entries) == 2 and plan.base_index is idx
        assert plan.predicted_incremental_s is not None
        assert plan.predicted_full_s is not None

    def test_bridge_removes_shrink(self):
        log, g, idx = _chain(gen.path_graph(6),
                             [("remove", [(0, 1)]), ("remove", [(4, 5)])])
        plan = plan_maintenance("auto", log, _stored(g), lambda fp: idx)
        assert plan.strategy == "incremental-shrink"

    def test_mixed_chain(self):
        # pendant bridge 0-6 off a 6-cycle: an intra add then a bridge remove
        log, g, idx = _chain(
            _pendant_cycle(), [("add", [(1, 3)]), ("remove", [(0, 6)])])
        plan = plan_maintenance("auto", log, _stored(g), lambda fp: idx)
        assert plan.strategy == "incremental-mixed"

    def test_cross_block_add_full(self):
        log, g, idx = _chain(gen.path_graph(4), [("add", [(0, 2)])])
        plan = plan_maintenance("auto", log, _stored(g), lambda fp: idx)
        assert plan.strategy == "full"
        assert "cross-block" in plan.reason

    def test_structural_remove_full(self):
        log, g, idx = _chain(gen.cycle_graph(5), [("remove", [(0, 1)])])
        plan = plan_maintenance("auto", log, _stored(g), lambda fp: idx)
        assert plan.strategy == "full" and "structural" in plan.reason

    def test_forced_incremental_mode_mismatch_full(self):
        log, g, idx = _chain(gen.path_graph(6), [("remove", [(0, 1)])])
        plan = plan_maintenance("incremental-extend", log, _stored(g),
                                lambda fp: idx)
        assert plan.strategy == "full" and "not incremental-extend" in plan.reason

    def test_forced_incremental_mode_match(self):
        log, g, idx = _chain(gen.path_graph(6), [("remove", [(0, 1)])])
        plan = plan_maintenance("incremental-shrink", log, _stored(g),
                                lambda fp: idx)
        assert plan.strategy == "incremental-shrink"

    def test_auto_prices_deep_chain_against_rebuild(self):
        # alternating fake add/remove entries, each claiming a huge
        # post-patch edge list: the patch chain must lose to one rebuild
        g = gen.cycle_graph(10)
        fp = graph_fingerprint(g)
        log = DeltaLog("g", "base", 1)
        for i in range(6):
            kind = "add" if i % 2 == 0 else "remove"
            log.append(DeltaEntry(
                kind=kind,
                graph_after=SimpleNamespace(m=10**8),
                fingerprint_after=fp if i == 5 else f"f{i}",
                version=i + 2,
                applies_to=i + 1,
                a=np.zeros(1, np.int64),
                b=np.zeros(1, np.int64),
                classification="intra-block" if kind == "add" else "bridge",
            ))
        plan = plan_maintenance(
            "auto", log, SimpleNamespace(graph=g, fingerprint=fp),
            lambda _: BCCIndex.build(g))
        assert plan.strategy == "full" and "priced above" in plan.reason
        assert plan.predicted_incremental_s > plan.predicted_full_s

    def test_modes_constant_covers_registry(self):
        assert set(STRATEGIES) | {"auto"} == set(MAINTENANCE_MODES)


def _pendant_cycle():
    """A 6-cycle with a pendant bridge 0-6 (7 vertices)."""
    g = gen.cycle_graph(6)
    return type(g)(7, np.append(g.u, 0), np.append(g.v, 6))


class TestApplyPlan:
    def test_coalesced_adds_match_fresh_build(self):
        log, g, idx = _chain(
            gen.cycle_graph(8),
            [("add", [(0, 2)]), ("add", [(1, 4)]), ("add", [(3, 6)])])
        plan = plan_maintenance("auto", log, _stored(g), lambda fp: idx)
        assert plan.strategy == "incremental-extend"
        out = apply_plan(plan)
        assert out is not None
        assert out.fingerprint == graph_fingerprint(g)
        fresh = BCCIndex.build(g)
        np.testing.assert_array_equal(out.result.edge_labels,
                                      fresh.result.edge_labels)
        np.testing.assert_array_equal(out._is_art, fresh._is_art)
        np.testing.assert_array_equal(out._is_bridge, fresh._is_bridge)

    def test_mixed_chain_matches_fresh_build(self):
        log, g, idx = _chain(
            _pendant_cycle(), [("add", [(1, 3)]), ("remove", [(0, 6)])])
        plan = plan_maintenance("auto", log, _stored(g), lambda fp: idx)
        assert plan.strategy == "incremental-mixed"
        out = apply_plan(plan)
        assert out is not None
        fresh = BCCIndex.build(g)
        np.testing.assert_array_equal(out.result.edge_labels,
                                      fresh.result.edge_labels)
        np.testing.assert_array_equal(out._is_bridge, fresh._is_bridge)

    def test_guard_bail_returns_none(self):
        # an entry claiming an add the graph never gained trips
        # extend_index's added-set guard
        g = gen.cycle_graph(6)
        idx = BCCIndex.build(g)
        bogus = DeltaEntry(
            kind="add", graph_after=g, fingerprint_after="x", version=2,
            applies_to=1, a=np.array([0], np.int64), b=np.array([2], np.int64),
            classification="intra-block")
        plan = MaintenancePlan("incremental-extend", entries=(bogus,),
                               base_index=idx)
        assert apply_plan(plan) is None

    def test_machine_charged_per_delta(self):
        class Recorder:
            def __init__(self):
                self.calls = []

            def parallel(self, size, ops):
                self.calls.append(int(size))

        log, g, idx = _chain(gen.cycle_graph(8),
                             [("add", [(0, 2)]), ("add", [(1, 4)])])
        plan = plan_maintenance("auto", log, _stored(g), lambda fp: idx)
        rec = Recorder()
        assert apply_plan(plan, machine=rec) is not None
        # coalescing is a host-side win: the simulated machine still pays
        # one relabelling sweep per delta
        assert rec.calls == [9, 10]


class TestEngineAccounting:
    def test_sync_auto_counts_incremental(self):
        eng = ServiceEngine(maintenance="auto")
        eng.put_graph("g", gen.cycle_graph(8))
        eng.query("g", "num_components")  # materialize the base index
        eng.add_edges("g", [(0, 2)])
        eng.add_edges("g", [(1, 5)])
        assert eng.stats.delta_log_depth == 2
        assert eng.query("g", "num_components") == 1
        s = eng.stats
        assert s.rebuilds_incremental == 1 and s.rebuilds_full == 0
        assert s.delta_log_depth == 0  # drained by the install
        assert s.rebuild_wall_by_strategy.get("incremental-extend", 0) > 0

    def test_sync_full_counts_full(self):
        eng = ServiceEngine(maintenance="full")
        eng.put_graph("g", gen.cycle_graph(8))
        eng.query("g", "num_components")
        eng.add_edges("g", [(0, 2)])
        eng.query("g", "num_components")
        s = eng.stats
        assert s.rebuilds_full == 1 and s.rebuilds_incremental == 0
        assert s.rebuild_wall_by_strategy.get("full", 0) > 0

    def test_initial_build_is_not_a_maintenance_event(self):
        eng = ServiceEngine(maintenance="auto")
        eng.put_graph("g", gen.cycle_graph(8))
        eng.query("g", "num_components")
        s = eng.stats
        assert s.rebuilds_incremental == 0 and s.rebuilds_full == 0

    def test_cross_block_falls_back_to_full(self):
        eng = ServiceEngine(maintenance="auto")
        eng.put_graph("g", gen.path_graph(5))
        eng.query("g", "num_components")
        eng.add_edges("g", [(0, 4)])  # closes the path into a cycle
        assert eng.query("g", "num_components") == 1
        s = eng.stats
        assert s.rebuilds_full == 1 and s.rebuilds_incremental == 0

    def test_guard_bail_falls_back_to_full(self, monkeypatch):
        # even with a qualifying plan, a patch-path bail must degrade to
        # one full rebuild with correct answers (satellite regression for
        # the updates.py "shouldn't happen" guard)
        monkeypatch.setattr(upd, "extend_index", lambda *a, **k: None)
        eng = ServiceEngine(maintenance="auto")
        eng.put_graph("g", gen.cycle_graph(8))
        eng.query("g", "num_components")
        eng.add_edges("g", [(0, 2)])
        assert eng.query("g", "num_components") == 1
        assert not eng.query("g", "is_articulation", v=0)
        s = eng.stats
        assert s.rebuilds_full == 1 and s.rebuilds_incremental == 0

    def test_delta_log_for_exposes_log(self):
        eng = ServiceEngine(maintenance="auto")
        eng.put_graph("g", gen.cycle_graph(8))
        assert eng.delta_log_for("g") is None
        eng.add_edges("g", [(0, 2)])
        log = eng.delta_log_for("g")
        assert isinstance(log, DeltaLog) and len(log) == 1

    def test_rejects_unknown_maintenance(self):
        with pytest.raises(ValueError, match="maintenance"):
            ServiceEngine(maintenance="bogus")


class TestAsyncMaintenance:
    def test_background_rebuild_is_incremental(self):
        with ServiceEngine(
            rebuild_mode="async", coalesce_ms=0.0, staleness_budget_ms=None,
            maintenance="auto",
        ) as eng:
            eng.put_graph("g", gen.cycle_graph(8))
            eng.query("g", "num_components")  # installs the base snapshot
            eng.add_edges("g", [(0, 2)])
            assert eng.drain(timeout=10.0)
            s = eng.stats
            assert s.rebuilds_incremental >= 1 and s.rebuilds_full == 0
            assert eng.query("g", "num_components", freshness="fresh") == 1
            assert eng.stats.delta_log_depth == 0

    def test_background_error_is_contained(self):
        with ServiceEngine(
            rebuild_mode="async", coalesce_ms=0.0, staleness_budget_ms=None,
        ) as eng:
            eng.put_graph("g", gen.cycle_graph(8))
            eng.query("g", "num_components")

            def boom(name, job):
                raise ValueError("boom")

            eng._scheduler._runner = boom
            eng.add_edges("g", [(0, 2)])
            assert eng.drain(timeout=10.0)
            s = eng.stats
            assert s.rebuild_errors == 1
            assert s.last_rebuild_error == "ValueError: boom"
            # the failed build is contained: the stale snapshot keeps serving
            assert eng.query("g", "num_components") == 1
            assert "rebuild_errors" in s.as_dict()
            assert s.as_dict()["last_rebuild_error"] == "ValueError: boom"
