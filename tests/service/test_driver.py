"""Tests for the workload driver: measurement, verification, acceptance run."""

import json

import pytest

import numpy as np

from repro.core.tarjan import tarjan_bcc
from repro.graph import generators as gen
from repro.service.driver import _per_item_ns, _percentiles, oracle_answer, run_workload
from repro.service.engine import ServiceEngine
from repro.service.workload import WorkloadSpec, generate_workload, mix_with_update_fraction
from repro.smp import e4500

SPEC = WorkloadSpec(
    num_ops=400,
    seed=3,
    graph={"family": "connected-gnm", "n": 120, "m": 360, "seed": 3},
)

BATCH_SPEC = WorkloadSpec(
    num_ops=80,
    seed=3,
    query_batch=16,
    graph={"family": "connected-gnm", "n": 120, "m": 360, "seed": 3},
)


class TestOracleAnswer:
    def test_unknown_op(self):
        res = tarjan_bcc(gen.cycle_graph(4))
        with pytest.raises(ValueError, match="unknown query op"):
            oracle_answer(res, {"op": "pagerank"})

    def test_non_edge_answers(self):
        res = tarjan_bcc(gen.path_graph(4))
        assert oracle_answer(res, {"op": "is_bridge", "u": 0, "v": 3}) is False
        assert oracle_answer(res, {"op": "component_of_edge", "u": 0, "v": 3}) is None

    def test_batch_ops_answered_elementwise(self):
        g = gen.path_graph(4)
        res = tarjan_bcc(g)
        pairs = [[0, 1], [0, 3], [1, 2]]
        assert oracle_answer(res, {"op": "is_bridge_many", "params": {"pairs": pairs}}) == [
            oracle_answer(res, {"op": "is_bridge", "u": u, "v": v}) for u, v in pairs
        ]
        assert oracle_answer(
            res, {"op": "is_articulation_many", "params": {"vs": [0, 1, 2, 3]}}
        ) == [oracle_answer(res, {"op": "is_articulation", "v": v}) for v in range(4)]
        cls = oracle_answer(res, {"op": "classify_edges", "params": {"pairs": pairs}})
        assert cls[1] == {"block": -1, "is_bridge": False}  # (0, 3) is a non-edge
        assert cls[0]["is_bridge"] is True


class TestHelpers:
    def test_percentiles_empty_is_zeros(self):
        out = _percentiles([])
        assert out == {"count": 0, "mean_us": 0.0, "p50_us": 0.0,
                       "p95_us": 0.0, "p99_us": 0.0}

    def test_percentiles_ordering(self):
        out = _percentiles([1000, 2000, 3000, 4000])
        assert out["count"] == 4
        assert out["p99_us"] >= out["p95_us"] >= out["p50_us"] > 0

    def test_per_item_ns_amortizes(self):
        # a 3-item batch at 30ns contributes three 10ns samples
        out = _per_item_ns([30, 50], [3, 1])
        np.testing.assert_allclose(sorted(out), [10.0, 10.0, 10.0, 50.0])

    def test_per_item_ns_empty(self):
        assert _per_item_ns([], []).size == 0


class TestRunWorkload:
    def test_verified_run(self):
        wl = generate_workload(SPEC)
        rep = run_workload(wl, verify=True)
        assert rep.verified is True and rep.mismatches == 0
        assert rep.num_ops == 400
        assert rep.num_queries + rep.num_updates == 400
        assert rep.throughput_ops_s > 0 and rep.wall_s > 0
        assert rep.cache_hit_rate > 0
        assert rep.graph_n == 120 and rep.graph_m == 360

    def test_latency_percentiles(self):
        rep = run_workload(generate_workload(SPEC))
        assert rep.verified is None  # verification off by default
        assert rep.query_p99_us >= rep.query_p95_us >= rep.query_p50_us > 0
        for op, lat in rep.latency_us.items():
            assert lat["count"] > 0
            assert lat["p99_us"] >= lat["p50_us"] > 0

    def test_simulated_machine(self):
        rep = run_workload(generate_workload(SPEC), machine=e4500(8))
        assert rep.p == 8
        assert rep.sim_time_s > 0
        assert set(rep.sim_regions) <= {"Service-build", "Service-extend", "Service-query"}
        assert rep.sim_regions["Service-build"] > 0

    def test_report_is_json_serializable(self):
        rep = run_workload(generate_workload(SPEC), machine=e4500(4), verify=True)
        doc = json.loads(json.dumps(rep.as_dict()))
        assert doc["verified"] is True
        assert doc["algorithm"] == "tv-filter"

    def test_explicit_graph_overrides_header(self):
        wl = generate_workload(SPEC)
        g = gen.random_connected_gnm(120, 360, seed=99)
        rep = run_workload(wl, graph=g, verify=True)
        assert rep.verified is True

    def test_reuses_passed_engine(self):
        eng = ServiceEngine(algorithm="tv-smp", cache_size=2)
        rep = run_workload(generate_workload(SPEC), engine=eng)
        assert rep.algorithm == "tv-smp"
        assert eng.stats.queries == rep.num_queries

    def test_batched_verified_run(self):
        wl = generate_workload(BATCH_SPEC)
        rep = run_workload(wl, verify=True)
        assert rep.verified is True and rep.mismatches == 0
        assert rep.num_query_items > rep.num_queries
        assert rep.num_query_items == wl.num_query_items
        assert rep.throughput_items_s > rep.throughput_ops_s
        assert rep.query_item_p99_us >= rep.query_item_p50_us > 0
        # batch latency entries carry item counts and amortized stats
        batched = [s for op, s in rep.latency_us.items() if op.endswith("_many")]
        assert batched
        for s in batched:
            assert s["items"] > s["count"]
            assert set(s["per_item_us"]) == {"mean_us", "p50_us", "p95_us", "p99_us"}
            assert s["per_item_us"]["p50_us"] <= s["p50_us"]

    def test_batched_report_json_serializable(self):
        rep = run_workload(generate_workload(BATCH_SPEC), verify=True)
        doc = json.loads(json.dumps(rep.as_dict()))
        assert doc["num_query_items"] == rep.num_query_items
        assert doc["query_item_p50_us"] == rep.query_item_p50_us

    def test_scalar_run_has_no_batch_extras(self):
        rep = run_workload(generate_workload(SPEC))
        assert rep.num_query_items == rep.num_queries
        for s in rep.latency_us.values():
            assert s["items"] == s["count"]

    def test_alternate_algorithm_verifies(self):
        spec = WorkloadSpec(num_ops=150, seed=5,
                            graph={"family": "gnm", "n": 60, "m": 120, "seed": 5})
        rep = run_workload(generate_workload(spec), algorithm="tv-opt", verify=True)
        assert rep.verified is True and rep.mismatches == 0


@pytest.mark.slow
class TestAcceptance:
    def test_10k_ops_mixed_workload(self):
        """ISSUE acceptance: seeded 10k-op 90/10 workload at n=10k, m=n*log2(n)."""
        n = 10_000
        spec = WorkloadSpec(
            num_ops=10_000,
            seed=42,
            mix=mix_with_update_fraction(0.1),
            edge_bias=0.05,
            graph={"family": "connected-gnm", "n": n, "m": n * 13, "seed": 42},
        )
        wl = generate_workload(spec)
        assert wl.num_updates == pytest.approx(1000, rel=0.2)
        rep = run_workload(wl, machine=e4500(12))
        assert rep.num_ops == 10_000
        assert rep.query_p99_us > 0  # p99 query latency is reported
        assert rep.cache_hit_rate > 0
        assert rep.throughput_ops_s > 0
        assert rep.rebuilds >= 1
        # index maintenance avoided most rebuilds
        assert rep.incremental_extensions > rep.rebuilds
