"""Tests for the workload driver: measurement, verification, acceptance run."""

import json

import pytest

from repro.core.tarjan import tarjan_bcc
from repro.graph import generators as gen
from repro.service.driver import oracle_answer, run_workload
from repro.service.engine import ServiceEngine
from repro.service.workload import WorkloadSpec, generate_workload, mix_with_update_fraction
from repro.smp import e4500

SPEC = WorkloadSpec(
    num_ops=400,
    seed=3,
    graph={"family": "connected-gnm", "n": 120, "m": 360, "seed": 3},
)


class TestOracleAnswer:
    def test_unknown_op(self):
        res = tarjan_bcc(gen.cycle_graph(4))
        with pytest.raises(ValueError, match="unknown query op"):
            oracle_answer(res, {"op": "pagerank"})

    def test_non_edge_answers(self):
        res = tarjan_bcc(gen.path_graph(4))
        assert oracle_answer(res, {"op": "is_bridge", "u": 0, "v": 3}) is False
        assert oracle_answer(res, {"op": "component_of_edge", "u": 0, "v": 3}) is None


class TestRunWorkload:
    def test_verified_run(self):
        wl = generate_workload(SPEC)
        rep = run_workload(wl, verify=True)
        assert rep.verified is True and rep.mismatches == 0
        assert rep.num_ops == 400
        assert rep.num_queries + rep.num_updates == 400
        assert rep.throughput_ops_s > 0 and rep.wall_s > 0
        assert rep.cache_hit_rate > 0
        assert rep.graph_n == 120 and rep.graph_m == 360

    def test_latency_percentiles(self):
        rep = run_workload(generate_workload(SPEC))
        assert rep.verified is None  # verification off by default
        assert rep.query_p99_us >= rep.query_p95_us >= rep.query_p50_us > 0
        for op, lat in rep.latency_us.items():
            assert lat["count"] > 0
            assert lat["p99_us"] >= lat["p50_us"] > 0

    def test_simulated_machine(self):
        rep = run_workload(generate_workload(SPEC), machine=e4500(8))
        assert rep.p == 8
        assert rep.sim_time_s > 0
        assert set(rep.sim_regions) <= {"Service-build", "Service-extend", "Service-query"}
        assert rep.sim_regions["Service-build"] > 0

    def test_report_is_json_serializable(self):
        rep = run_workload(generate_workload(SPEC), machine=e4500(4), verify=True)
        doc = json.loads(json.dumps(rep.as_dict()))
        assert doc["verified"] is True
        assert doc["algorithm"] == "tv-filter"

    def test_explicit_graph_overrides_header(self):
        wl = generate_workload(SPEC)
        g = gen.random_connected_gnm(120, 360, seed=99)
        rep = run_workload(wl, graph=g, verify=True)
        assert rep.verified is True

    def test_reuses_passed_engine(self):
        eng = ServiceEngine(algorithm="tv-smp", cache_size=2)
        rep = run_workload(generate_workload(SPEC), engine=eng)
        assert rep.algorithm == "tv-smp"
        assert eng.stats.queries == rep.num_queries

    def test_alternate_algorithm_verifies(self):
        spec = WorkloadSpec(num_ops=150, seed=5,
                            graph={"family": "gnm", "n": 60, "m": 120, "seed": 5})
        rep = run_workload(generate_workload(spec), algorithm="tv-opt", verify=True)
        assert rep.verified is True and rep.mismatches == 0


@pytest.mark.slow
class TestAcceptance:
    def test_10k_ops_mixed_workload(self):
        """ISSUE acceptance: seeded 10k-op 90/10 workload at n=10k, m=n*log2(n)."""
        n = 10_000
        spec = WorkloadSpec(
            num_ops=10_000,
            seed=42,
            mix=mix_with_update_fraction(0.1),
            edge_bias=0.05,
            graph={"family": "connected-gnm", "n": n, "m": n * 13, "seed": 42},
        )
        wl = generate_workload(spec)
        assert wl.num_updates == pytest.approx(1000, rel=0.2)
        rep = run_workload(wl, machine=e4500(12))
        assert rep.num_ops == 10_000
        assert rep.query_p99_us > 0  # p99 query latency is reported
        assert rep.cache_hit_rate > 0
        assert rep.throughput_ops_s > 0
        assert rep.rebuilds >= 1
        # index maintenance avoided most rebuilds
        assert rep.incremental_extensions > rep.rebuilds
