"""Shared fixtures, oracles, and hypothesis profiles for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core.result import canonical_edge_labels
from repro.graph import Graph

# Profiles are selected with HYPOTHESIS_PROFILE (default "dev").  "ci"
# derandomizes (fixed seed, no flaky example discovery across runs) and
# drops the per-example deadline — shared CI runners blow 200 ms budgets
# on noise, which used to fail the matrix spuriously.
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=1000)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def nx_edge_labels(g: Graph) -> np.ndarray:
    """Ground-truth biconnected-component edge labels via networkx."""
    import networkx as nx

    G = g.to_networkx()
    lab = np.full(g.m, -1, dtype=np.int64)
    key = {(int(a), int(b)): i for i, (a, b) in enumerate(g.edges().tolist())}
    for cid, comp in enumerate(nx.biconnected_component_edges(G)):
        for a, b in comp:
            lab[key[(min(a, b), max(a, b))]] = cid
    assert (lab >= 0).all(), "networkx did not label every edge"
    return canonical_edge_labels(lab)


def nx_articulation_points(g: Graph) -> np.ndarray:
    import networkx as nx

    return np.array(sorted(nx.articulation_points(g.to_networkx())), dtype=np.int64)


def nx_bridges(g: Graph) -> np.ndarray:
    import networkx as nx

    ids = []
    key = {(int(a), int(b)): i for i, (a, b) in enumerate(g.edges().tolist())}
    for a, b in nx.bridges(g.to_networkx()):
        ids.append(key[(min(a, b), max(a, b))])
    return np.array(sorted(ids), dtype=np.int64)


def graph_corpus() -> list[tuple[str, Graph]]:
    """The shared adversarial corpus (see ``tests/strategies.py``)."""
    from tests.strategies import graph_corpus as _corpus

    return _corpus()


@pytest.fixture(scope="session")
def corpus():
    return graph_corpus()


@pytest.fixture(scope="session")
def connected_corpus():
    from tests.strategies import connected_corpus as _connected

    return _connected()
