"""Shared fixtures and oracles for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.result import canonical_edge_labels
from repro.graph import Graph, generators as gen


def nx_edge_labels(g: Graph) -> np.ndarray:
    """Ground-truth biconnected-component edge labels via networkx."""
    import networkx as nx

    G = g.to_networkx()
    lab = np.full(g.m, -1, dtype=np.int64)
    key = {(int(a), int(b)): i for i, (a, b) in enumerate(g.edges().tolist())}
    for cid, comp in enumerate(nx.biconnected_component_edges(G)):
        for a, b in comp:
            lab[key[(min(a, b), max(a, b))]] = cid
    assert (lab >= 0).all(), "networkx did not label every edge"
    return canonical_edge_labels(lab)


def nx_articulation_points(g: Graph) -> np.ndarray:
    import networkx as nx

    return np.array(sorted(nx.articulation_points(g.to_networkx())), dtype=np.int64)


def nx_bridges(g: Graph) -> np.ndarray:
    import networkx as nx

    ids = []
    key = {(int(a), int(b)): i for i, (a, b) in enumerate(g.edges().tolist())}
    for a, b in nx.bridges(g.to_networkx()):
        ids.append(key[(min(a, b), max(a, b))])
    return np.array(sorted(ids), dtype=np.int64)


def graph_corpus() -> list[tuple[str, Graph]]:
    """A diverse set of graphs exercising every structural case."""
    corpus = [
        ("empty", Graph(0, [], [])),
        ("one-vertex", Graph(1, [], [])),
        ("one-edge", Graph(2, [0], [1])),
        ("two-isolated", Graph(2, [], [])),
        ("triangle", gen.cycle_graph(3)),
        ("square", gen.cycle_graph(4)),
        ("path-2", gen.path_graph(3)),
        ("path-10", gen.path_graph(10)),
        ("star-8", gen.star_graph(8)),
        ("k5", gen.complete_graph(5)),
        ("k2,3", Graph(5, [0, 0, 0, 1, 1, 1], [2, 3, 4, 2, 3, 4])),
        ("binary-tree", gen.binary_tree(15)),
        ("grid-4x5", gen.grid_graph(4, 5)),
        ("torus-3x4", gen.torus_graph(3, 4)),
        ("cliques-path", gen.cliques_on_a_path(3, 4)[0]),
        ("cycles-chain", gen.cycles_chain(4, 5)[0]),
        ("block-graph", gen.block_graph(12, seed=3)[0]),
        ("gnm-sparse", gen.random_gnm(40, 50, seed=5)),
        ("gnm-disconnected", gen.random_gnm(60, 40, seed=6)),
        ("gnm-connected", gen.random_connected_gnm(80, 200, seed=7)),
        ("gnm-dense", gen.dense_gnm(18, 0.7, seed=8)),
        ("theta", Graph(6, [0, 1, 2, 0, 4, 5, 0], [1, 2, 3, 4, 5, 3, 3])),
        ("two-triangles-bridge", Graph(6, [0, 1, 2, 2, 3, 4, 5], [1, 2, 0, 3, 4, 5, 3])),
    ]
    return corpus


@pytest.fixture(scope="session")
def corpus():
    return graph_corpus()


@pytest.fixture(scope="session")
def connected_corpus():
    from repro.graph.validate import is_connected

    return [(name, g) for name, g in graph_corpus() if g.n > 0 and is_connected(g)]
