"""The paper's quantitative claims, asserted at reduced scale.

These are the Fig. 3 / Fig. 4 / §4-§5 shapes (see EXPERIMENTS.md for the
full-scale numbers): the instances here use n = 20k so the whole module
runs in seconds, and the assertions leave slack around the full-scale
ratios.
"""

import os

import numpy as np
import pytest

from repro.core import tarjan_bcc, tv_filter_bcc, tv_opt_bcc, tv_smp_bcc
from repro.graph import generators as gen
from repro.smp import e4500, sequential_machine

N = 20_000


@pytest.fixture(scope="module")
def timings():
    """Simulated times for all algorithms over the density grid at p=12."""
    out = {}
    for mult in (4, 12):
        g = gen.random_connected_gnm(N, mult * N, seed=42)
        ms = sequential_machine()
        seq = tarjan_bcc(g, ms)
        row = {"seq": ms.time_s}
        for name, fn in [
            ("smp", tv_smp_bcc),
            ("opt", tv_opt_bcc),
            ("filter", lambda gg, mm: tv_filter_bcc(gg, mm, fallback_ratio=None)),
        ]:
            m = e4500(12)
            res = fn(g, m)
            assert res.same_partition(seq)
            row[name] = m.time_s
        out[mult] = row
    return out


class TestFig3Shapes:
    def test_tv_smp_never_beats_sequential(self, timings):
        # §5: "For all the instances, TV-SMP does not beat the best
        # sequential implementation even at 12 processors."
        for mult, row in timings.items():
            assert row["smp"] >= row["seq"] * 0.95, (mult, row)

    def test_tv_opt_roughly_half_of_tv_smp(self, timings):
        # §5: "TV-opt takes roughly half the execution time of TV-SMP."
        for mult, row in timings.items():
            ratio = row["opt"] / row["smp"]
            assert 0.3 <= ratio <= 0.7, (mult, ratio)

    def test_tv_opt_parallel_speedup(self, timings):
        # §5: TV-opt achieves real speedup over sequential at 12 procs
        for mult, row in timings.items():
            assert row["opt"] < row["seq"], (mult, row)

    def test_tv_filter_best_at_density(self, timings):
        # §4/§5: filtering wins once the graph is not extremely sparse
        row = timings[12]
        assert row["filter"] < row["opt"] < row["smp"]

    def test_filter_advantage_grows_with_density(self, timings):
        gain_sparse = timings[4]["opt"] / timings[4]["filter"]
        gain_dense = timings[12]["opt"] / timings[12]["filter"]
        assert gain_dense > gain_sparse

    def test_filter_speedup_magnitude(self, timings):
        # the paper reports speedups up to 4 at m = n log n on 12 procs;
        # at this reduced scale require at least 2x
        assert timings[12]["seq"] / timings[12]["filter"] >= 2.0


class TestScalingWithP:
    def test_speedup_curves_monotone(self):
        g = gen.random_connected_gnm(N, 8 * N, seed=7)
        for fn in (tv_opt_bcc, tv_smp_bcc):
            prev = None
            for p in (1, 2, 4, 8, 12):
                m = e4500(p)
                fn(g, m)
                if prev is not None:
                    assert m.time_s < prev
                prev = m.time_s


class TestFig4Shapes:
    def test_smp_spends_more_on_tree_steps_than_opt(self):
        # §5: "TV-SMP takes much more time than TV-opt to compute a
        # spanning tree and construct the Euler-tour ... for tree
        # computations TV-opt is much faster"
        g = gen.random_connected_gnm(N, 8 * N, seed=8)
        m_smp, m_opt = e4500(12), e4500(12)
        tv_smp_bcc(g, m_smp)
        tv_opt_bcc(g, m_opt)
        r_smp = m_smp.report().region_times_s()
        r_opt = m_opt.report().region_times_s()
        smp_tree = r_smp["Spanning-tree"] + r_smp["Euler-tour"] + r_smp["Root-tree"]
        opt_tree = r_opt["Spanning-tree"] + r_opt["Euler-tour"]
        assert smp_tree > 2 * opt_tree

    def test_rest_roughly_same_between_smp_and_opt(self):
        # §5: "For the rest of the computations, TV-SMP and TV-opt take
        # roughly the same amount of time."
        g = gen.random_connected_gnm(N, 8 * N, seed=8)
        m_smp, m_opt = e4500(12), e4500(12)
        tv_smp_bcc(g, m_smp)
        tv_opt_bcc(g, m_opt)
        r_smp = m_smp.report().region_times_s()
        r_opt = m_opt.report().region_times_s()
        for step in ("Label-edge", "Connected-components"):
            ratio = r_smp[step] / r_opt[step]
            assert 0.5 <= ratio <= 2.0, (step, ratio)

    def test_filter_shrinks_lowhigh_label_cc(self):
        # §5/Fig.4: "we expect reduced execution time for TV-filter in
        # computing low-high values, labeling, and computing connected
        # components"
        g = gen.random_connected_gnm(N, 12 * N, seed=9)
        m_opt, m_f = e4500(12), e4500(12)
        tv_opt_bcc(g, m_opt)
        tv_filter_bcc(g, m_f, fallback_ratio=None)
        r_opt = m_opt.report().region_times_s()
        r_f = m_f.report().region_times_s()
        for step in ("Low-high", "Label-edge", "Connected-components"):
            assert r_f[step] < r_opt[step], step

    def test_filtering_step_cost_is_worthwhile_when_dense(self):
        # the extra Filtering step pays for itself at m = 12n
        g = gen.random_connected_gnm(N, 12 * N, seed=9)
        m_opt, m_f = e4500(12), e4500(12)
        tv_opt_bcc(g, m_opt)
        tv_filter_bcc(g, m_f, fallback_ratio=None)
        assert m_f.time_s < m_opt.time_s
