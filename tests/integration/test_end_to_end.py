"""Integration tests: every algorithm against every graph family, plus
machine-accounting consistency and determinism."""

import numpy as np
import pytest

from repro import ALGORITHMS, biconnected_components, e4500
from repro.graph import Graph, generators as gen
from repro.smp import FLAT_UNIT_COSTS, Machine
from tests.conftest import nx_edge_labels

ALGOS = sorted(ALGORITHMS)


class TestAllAlgorithmsAllFamilies:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_corpus(self, algorithm, corpus):
        for name, g in corpus:
            res = biconnected_components(g, algorithm=algorithm)
            np.testing.assert_array_equal(
                res.edge_labels, nx_edge_labels(g), err_msg=f"{name}/{algorithm}"
            )

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_medium_random_graphs(self, algorithm):
        for seed, (n, m) in enumerate([(500, 1200), (400, 2400), (600, 800)]):
            g = gen.random_connected_gnm(n, m, seed=seed)
            res = biconnected_components(g, algorithm=algorithm)
            np.testing.assert_array_equal(res.edge_labels, nx_edge_labels(g))

    def test_all_algorithms_agree_pairwise(self):
        g = gen.random_gnm(300, 700, seed=11)
        results = [biconnected_components(g, algorithm=a) for a in ALGOS]
        for other in results[1:]:
            assert results[0].same_partition(other)


class TestDeterminism:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_repeated_runs_identical(self, algorithm):
        g = gen.random_connected_gnm(150, 450, seed=3)
        a = biconnected_components(g, algorithm=algorithm)
        b = biconnected_components(g, algorithm=algorithm)
        np.testing.assert_array_equal(a.edge_labels, b.edge_labels)

    def test_simulated_times_reproducible(self):
        g = gen.random_connected_gnm(150, 450, seed=4)
        t = []
        for _ in range(2):
            m = e4500(8)
            biconnected_components(g, algorithm="tv-opt", machine=m)
            t.append(m.time_s)
        assert t[0] == pytest.approx(t[1])


class TestMachineAccounting:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_regions_cover_most_of_total(self, algorithm):
        g = gen.random_connected_gnm(300, 1400, seed=5)
        m = e4500(6)
        biconnected_components(g, algorithm=algorithm, machine=m)
        rep = m.report()
        region_sum = sum(rep.region_times_s().values())
        assert region_sum <= rep.time_s * (1 + 1e-9)
        assert region_sum >= rep.time_s * 0.85  # little unattributed time

    def test_work_decreasing_time_with_p(self):
        g = gen.random_connected_gnm(400, 2000, seed=6)
        prev = None
        for p in (1, 2, 4, 8, 12):
            m = e4500(p)
            biconnected_components(g, algorithm="tv-filter", machine=m,
                                   fallback_ratio=None)
            if prev is not None:
                assert m.time_s < prev
            prev = m.time_s

    def test_flat_machine_counts_positive_work(self):
        g = gen.random_connected_gnm(100, 250, seed=7)
        for algorithm in ALGOS:
            m = Machine(4, FLAT_UNIT_COSTS)
            biconnected_components(g, algorithm=algorithm, machine=m)
            assert m.totals.work_total > 0
            assert m.totals.time_ns > 0


class TestStressShapes:
    def test_long_path_with_chords(self):
        # moderately deep BFS tree exercises the level sweeps
        n = 400
        base = gen.path_graph(n)
        rng = np.random.default_rng(0)
        extra_u = rng.integers(0, n - 20, size=50)
        extra_v = extra_u + rng.integers(2, 19, size=50)
        g = base.union_edges(Graph(n, extra_u, extra_v))
        for algorithm in ALGOS:
            res = biconnected_components(g, algorithm=algorithm)
            np.testing.assert_array_equal(res.edge_labels, nx_edge_labels(g))

    def test_near_complete_graph(self):
        g = gen.dense_gnm(25, 0.9, seed=8)
        for algorithm in ALGOS:
            res = biconnected_components(g, algorithm=algorithm)
            np.testing.assert_array_equal(res.edge_labels, nx_edge_labels(g))

    def test_many_components_many_bridges(self):
        parts = []
        offset = 0
        us, vs = [], []
        rng = np.random.default_rng(9)
        n_total = 0
        for k in range(12):
            size = int(rng.integers(2, 12))
            tree = gen.random_tree(size, seed=k)
            us.append(tree.u + n_total)
            vs.append(tree.v + n_total)
            n_total += size
        g = Graph(n_total, np.concatenate(us), np.concatenate(vs))
        for algorithm in ALGOS:
            res = biconnected_components(g, algorithm=algorithm)
            np.testing.assert_array_equal(res.edge_labels, nx_edge_labels(g))
