"""Smoke tests: every example script must run to completion.

Examples are part of the public deliverable; these tests catch API drift.
Each runs in a subprocess (so module-level code executes exactly as a user
would see it) with a generous timeout.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "biconnected components: 4" in out
        assert "matches sequential Tarjan: OK" in out

    def test_network_resilience(self):
        out = run_example("network_resilience.py")
        assert "backbone is now 2-connected" in out

    def test_filtering_anatomy(self):
        out = run_example("filtering_anatomy.py")
        assert "%filtered" in out.replace(" ", "") or "filtered" in out
        assert "erratum" in out

    def test_planarity_preprocessing(self):
        out = run_example("planarity_preprocessing.py")
        assert "NOT planar" in out
        assert "verdicts agree" in out

    def test_speedup_study_small(self):
        out = run_example("speedup_study.py", "5000", timeout=300)
        assert "Fig. 3" in out
        assert "paper-shape spot checks" in out
