"""Stateful property test: a graph evolves, the invariants must track.

A hypothesis rule-based machine adds random edges, removes random edges,
and merges in blocks; after every step all four algorithms must agree with
networkx on the full derived picture (partition, articulation points,
bridges) and the block-cut tree must remain a forest.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro import ALGORITHMS, biconnected_components
from repro.core import block_cut_tree, tarjan_bcc
from repro.graph import Graph
from tests.conftest import nx_articulation_points, nx_bridges, nx_edge_labels

N = 14  # small vertex count keeps the oracle cheap over many steps


class EvolvingGraphMachine(RuleBasedStateMachine):
    @initialize()
    def start_empty(self):
        self.edges: set[tuple[int, int]] = set()

    def _graph(self) -> Graph:
        if not self.edges:
            return Graph(N, [], [])
        arr = np.array(sorted(self.edges), dtype=np.int64)
        return Graph(N, arr[:, 0], arr[:, 1])

    @rule(a=st.integers(0, N - 1), b=st.integers(0, N - 1))
    def add_edge(self, a, b):
        if a != b:
            self.edges.add((min(a, b), max(a, b)))

    @rule(data=st.data())
    def remove_edge(self, data):
        if self.edges:
            edge = data.draw(st.sampled_from(sorted(self.edges)))
            self.edges.discard(edge)

    @rule(center=st.integers(0, N - 1), k=st.integers(2, 4))
    def add_fan(self, center, k):
        # a fan of edges off one vertex: creates bridges / articulation pts
        for i in range(1, k + 1):
            other = (center + i) % N
            if other != center:
                self.edges.add((min(center, other), max(center, other)))

    @rule(start=st.integers(0, N - 1), length=st.integers(3, 5))
    def add_cycle(self, start, length):
        ring = [(start + i) % N for i in range(length)]
        for a, b in zip(ring, ring[1:] + ring[:1]):
            if a != b:
                self.edges.add((min(a, b), max(a, b)))

    @invariant()
    def all_algorithms_match_networkx(self):
        g = self._graph()
        ref_labels = nx_edge_labels(g)
        ref_cuts = nx_articulation_points(g)
        ref_bridges = nx_bridges(g)
        for name in sorted(ALGORITHMS):
            res = biconnected_components(g, algorithm=name)
            np.testing.assert_array_equal(res.edge_labels, ref_labels, err_msg=name)
            np.testing.assert_array_equal(res.articulation_points(), ref_cuts)
            np.testing.assert_array_equal(res.bridges(), ref_bridges)

    @invariant()
    def block_cut_tree_is_forest(self):
        import networkx as nx

        bct = block_cut_tree(tarjan_bcc(self._graph()))
        if bct.tree.n:
            assert nx.is_forest(bct.tree.to_networkx())


EvolvingGraphMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
TestEvolvingGraph = EvolvingGraphMachine.TestCase
