"""The adversarial corpus: generators' invariants and seeded determinism."""

import numpy as np
import pytest

from repro.core.tarjan import tarjan_bcc
from repro.graph import Graph, generators as gen
from repro.qa.corpus import (
    MUTATIONS,
    bridge_chain,
    disconnected_union,
    glued_cliques,
    messy_edges_graph,
    mutate,
    named_corpus,
    random_graph,
)


class TestGenerators:
    @pytest.mark.parametrize("links,cycle_len", [(1, 3), (2, 4), (5, 4), (3, 6)])
    def test_bridge_chain_block_count(self, links, cycle_len):
        g, expected = bridge_chain(links, cycle_len=cycle_len)
        assert expected == 2 * links - 1
        assert tarjan_bcc(g).num_components == expected

    def test_bridge_chain_rejects_degenerate(self):
        with pytest.raises(ValueError):
            bridge_chain(0)
        with pytest.raises(ValueError):
            bridge_chain(2, cycle_len=2)

    @pytest.mark.parametrize("sizes", [[2], [3, 3], [4, 2, 5], [2, 2, 2, 2]])
    @pytest.mark.parametrize("hub", [False, True])
    def test_glued_cliques_block_count(self, sizes, hub):
        g, expected = glued_cliques(sizes, hub=hub)
        assert expected == len(sizes)
        res = tarjan_bcc(g)
        assert res.num_components == expected
        if len(sizes) >= 2 and hub:
            # the hub is the unique articulation point
            np.testing.assert_array_equal(res.articulation_points(), [0])

    def test_glued_cliques_rejects_degenerate(self):
        with pytest.raises(ValueError):
            glued_cliques([])
        with pytest.raises(ValueError):
            glued_cliques([3, 1])

    def test_disconnected_union_counts(self):
        parts = [gen.complete_graph(4), gen.cycle_graph(5), Graph(3, [], [])]
        u = disconnected_union(parts)
        assert u.n == sum(p.n for p in parts)
        assert u.m == sum(p.m for p in parts)
        # block counts add over a disjoint union
        assert tarjan_bcc(u).num_components == sum(
            tarjan_bcc(p).num_components for p in parts
        )

    def test_disconnected_union_empty(self):
        u = disconnected_union([])
        assert u.n == 0 and u.m == 0

    def test_messy_edges_graph_normalizes_back(self):
        for base in (gen.complete_graph(5), gen.block_graph(10, seed=2)[0],
                     gen.path_graph(7)):
            for seed in range(3):
                h = messy_edges_graph(base, seed=seed)
                assert h.n == base.n
                np.testing.assert_array_equal(h.u, base.u)
                np.testing.assert_array_equal(h.v, base.v)


class TestNamedCorpus:
    def test_names_unique_and_nonempty(self):
        entries = named_corpus()
        names = [name for name, _ in entries]
        assert len(names) == len(set(names))
        assert len(entries) >= 30

    def test_superset_of_legacy_fixture_names(self):
        # the names the per-suite copy-pasted lists used; suites now import
        # the shared corpus, so these must keep existing
        legacy = {
            "empty", "one-vertex", "one-edge", "two-isolated", "triangle",
            "square", "path-2", "path-10", "star-8", "k5", "k2,3",
            "binary-tree", "grid-4x5", "torus-3x4", "cliques-path",
            "cycles-chain", "block-graph", "gnm-sparse", "gnm-disconnected",
            "gnm-connected", "gnm-dense", "theta", "two-triangles-bridge",
        }
        names = {name for name, _ in named_corpus()}
        assert legacy <= names

    def test_every_entry_is_valid(self):
        for name, g in named_corpus():
            assert isinstance(g, Graph), name
            # normalized invariants: u < v, lexicographically sorted, unique
            if g.m:
                assert (g.u < g.v).all(), name
                key = g.u * np.int64(g.n) + g.v
                assert (np.diff(key) > 0).all(), name

    def test_deterministic(self):
        a = named_corpus()
        b = named_corpus()
        for (na, ga), (nb, gb) in zip(a, b):
            assert na == nb
            assert ga == gb


class TestRandomAndMutate:
    def test_random_graph_deterministic_in_rng(self):
        for seed in range(5):
            f1, g1 = random_graph(np.random.default_rng(seed))
            f2, g2 = random_graph(np.random.default_rng(seed))
            assert f1 == f2 and g1 == g2

    def test_random_graph_family_coverage(self):
        rng = np.random.default_rng(0)
        families = {random_graph(rng, max_n=32)[0] for _ in range(120)}
        assert len(families) >= 6

    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_each_mutation_valid_on_corpus(self, name):
        fn = MUTATIONS[name]
        for gname, g in named_corpus():
            rng = np.random.default_rng(17)
            h = fn(g, rng)
            assert isinstance(h, Graph), (name, gname)
            if h.m:
                assert (h.u < h.v).all(), (name, gname)
                assert int(h.u.max()) < h.n and int(h.v.max()) < h.n

    def test_mutate_deterministic(self):
        g = gen.random_connected_gnm(30, 60, seed=1)
        h1 = mutate(g, np.random.default_rng(9), rounds=3)
        h2 = mutate(g, np.random.default_rng(9), rounds=3)
        assert h1 == h2

    def test_mutate_zero_rounds_is_identity(self):
        g = gen.cycle_graph(5)
        assert mutate(g, np.random.default_rng(0), rounds=0) == g
