"""Cross-algorithm differential matrix: every variant vs the Tarjan oracle.

The lockdown for the fastbcc/fastsv registry additions: every registered
pipeline algorithm (plus ``auto``) must agree with the sequential Tarjan
oracle *bit for bit* on canonicalized edge labels — and therefore on the
derived articulation-point and bridge sets — across the full named
corpus, seeded random instances from the family mix (disconnected,
multi-edge-normalized, degenerate stars/paths included), and
hypothesis-generated G(n,m) draws.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import biconnected_components
from repro.core import tarjan_bcc
from repro.core.pipeline import list_algorithms, run_pipeline
from repro.graph import Graph, generators as gen
from repro.qa import corpus as qa_corpus

MATRIX = tuple(list_algorithms())  # tv-smp, tv-opt, tv-filter, fastsv, fastbcc


def assert_bit_identical(g, res, ref, ctx):
    # edge_labels are canonicalized by first occurrence in both results,
    # so cross-algorithm agreement is exact array equality
    np.testing.assert_array_equal(res.edge_labels, ref.edge_labels, err_msg=ctx)
    np.testing.assert_array_equal(
        res.articulation_points(), ref.articulation_points(), err_msg=ctx)
    np.testing.assert_array_equal(res.bridges(), ref.bridges(), err_msg=ctx)
    assert res.num_components == ref.num_components, ctx


class TestNamedCorpusMatrix:
    @pytest.mark.parametrize("algorithm", MATRIX)
    def test_matches_tarjan_on_full_corpus(self, algorithm, corpus):
        for name, g in corpus:
            ref = tarjan_bcc(g)
            res = run_pipeline(g, algorithm)
            assert_bit_identical(g, res, ref, f"{algorithm} on {name}")

    def test_matrix_covers_all_variants(self):
        assert set(MATRIX) == {"tv-smp", "tv-opt", "tv-filter", "fastsv", "fastbcc"}

    def test_auto_on_corpus_via_api(self, corpus):
        for name, g in corpus:
            ref = tarjan_bcc(g)
            res = biconnected_components(g, algorithm="auto")
            assert res.algorithm in MATRIX, name
            assert_bit_identical(g, res, ref, f"auto({res.algorithm}) on {name}")


class TestRandomFamiliesMatrix:
    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_family_mix(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(6):
            family, g = qa_corpus.random_graph(rng, max_n=48)
            ref = tarjan_bcc(g)
            for algorithm in MATRIX:
                res = run_pipeline(g, algorithm)
                assert_bit_identical(g, res, ref, f"{algorithm} on {family}")

    @pytest.mark.parametrize("algorithm", MATRIX)
    def test_degenerate_and_disconnected(self, algorithm):
        cases = [
            ("star-16", gen.star_graph(16)),
            ("path-16", gen.path_graph(16)),
            ("isolated", Graph(4, [], [])),
            ("multi-edge", Graph(3, [0, 0, 0, 1, 1, 2], [1, 1, 1, 2, 2, 2])),
            ("union", qa_corpus.disconnected_union(
                [gen.cycle_graph(4), gen.star_graph(5), Graph(2, [], [])])),
            ("messy", qa_corpus.messy_edges_graph(gen.complete_graph(6), seed=3)),
            ("block-path", qa_corpus.block_path(12)[0]),
            ("deep-bct", qa_corpus.deep_blockcut_tree(6, fanout=1)[0]),
            ("core-pendants", qa_corpus.dense_core_pendants(10, 0.9, seed=5)),
        ]
        for name, g in cases:
            ref = tarjan_bcc(g)
            res = run_pipeline(g, algorithm)
            assert_bit_identical(g, res, ref, f"{algorithm} on {name}")

    @given(
        algorithm=st.sampled_from(MATRIX),
        n=st.integers(1, 48),
        extra=st.integers(0, 96),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_gnm(self, algorithm, n, extra, seed):
        m = min(extra, n * (n - 1) // 2)
        g = gen.random_gnm(n, m, seed=seed)
        ref = tarjan_bcc(g)
        res = run_pipeline(g, algorithm)
        assert_bit_identical(g, res, ref, f"{algorithm} n={n} m={m} seed={seed}")

    @given(n=st.integers(2, 40), seed=st.integers(0, 2**31 - 1),
           rounds=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_property_mutated(self, n, seed, rounds):
        rng = np.random.default_rng(seed)
        _, g = qa_corpus.random_graph(rng, max_n=n)
        g = qa_corpus.mutate(g, rng, rounds=rounds)
        ref = tarjan_bcc(g)
        for algorithm in ("tv-opt", "fastbcc"):
            res = run_pipeline(g, algorithm)
            assert_bit_identical(g, res, ref, f"{algorithm} mutated seed={seed}")
