"""Greedy minimizer: shrinks while preserving the failure predicate."""

import numpy as np
import pytest

from repro.core.tarjan import tarjan_bcc
from repro.graph import Graph, generators as gen
from repro.qa.minimize import minimize_graph


def has_cycle(g: Graph) -> bool:
    # any block with more than one edge means a cycle exists
    res = tarjan_bcc(g)
    if g.m == 0:
        return False
    return bool((np.bincount(res.edge_labels) >= 2).any())


class TestMinimize:
    def test_cycle_predicate_shrinks_to_triangle(self):
        g = gen.random_connected_gnm(40, 120, seed=3)
        assert has_cycle(g)
        small = minimize_graph(g, has_cycle)
        # greedy single-edge deletion is 1-minimal, so the result is a short
        # cycle: either the triangle or a square it cannot escape from
        assert small.m <= 4 and small.n == small.m
        assert has_cycle(small)
        # 1-minimality: removing any single edge kills the cycle
        for i in range(small.m):
            keep = [j for j in range(small.m) if j != i]
            h = Graph(small.n, small.u[keep], small.v[keep])
            assert not has_cycle(h)

    def test_bridge_predicate_shrinks_to_single_edge(self):
        def has_bridge(h):
            return h.m > 0 and tarjan_bcc(h).bridges().size > 0

        g = gen.block_graph(14, seed=5)[0]
        assert has_bridge(g)
        small = minimize_graph(g, has_bridge)
        assert small.n == 2 and small.m == 1

    def test_result_always_satisfies_predicate(self):
        def weird(h):
            return h.m >= 4 and bool((h.degrees() >= 3).any())

        g = gen.random_connected_gnm(30, 90, seed=8)
        small = minimize_graph(g, weird)
        assert weird(small)
        assert small.m <= g.m

    def test_isolated_vertices_compacted(self):
        g = gen.random_gnm(50, 20, seed=2)  # plenty of isolated vertices

        def nonempty(h):
            return h.m >= 1

        small = minimize_graph(g, nonempty)
        assert small.m == 1 and small.n == 2
        assert (small.degrees() > 0).all()

    def test_predicate_must_hold_initially(self):
        with pytest.raises(ValueError, match="does not hold"):
            minimize_graph(gen.path_graph(4), lambda h: False)

    def test_budget_bounds_predicate_calls(self):
        calls = {"n": 0}

        def counting(h):
            calls["n"] += 1
            return h.m >= 1

        minimize_graph(gen.random_connected_gnm(60, 180, seed=1), counting,
                       max_checks=25)
        assert calls["n"] <= 25

    def test_deterministic(self):
        g = gen.random_connected_gnm(30, 80, seed=4)
        a = minimize_graph(g, has_cycle)
        b = minimize_graph(g, has_cycle)
        assert a == b
