"""Differential oracle: agreement on good code, detection of bad runners."""

import numpy as np
import pytest

from repro.api import biconnected_components
from repro.core.result import BCCResult
from repro.graph import generators as gen
from repro.qa.oracle import (
    Divergence,
    check_graph,
    differential_check,
    service_replay_check,
)
from tests.strategies import graph_corpus

ALGOS = ("tv-smp", "tv-opt", "tv-filter")


class TestDifferential:
    def test_clean_on_corpus_simulated(self):
        for name, g in graph_corpus():
            for algorithm in ALGOS:
                assert differential_check(g, algorithm) is None, (name, algorithm)

    @pytest.mark.parametrize("backend,p", [("serial", 2), ("threads", 2)])
    def test_clean_on_real_backends(self, backend, p):
        g = gen.random_connected_gnm(60, 150, seed=4)
        for algorithm in ALGOS:
            assert differential_check(g, algorithm, backend=backend, p=p) is None

    def test_check_graph_sweeps_configs(self):
        g = gen.cliques_on_a_path(3, 4)[0]
        divs = check_graph(g, ALGOS, backends=("simulated", "serial"), ps=(1, 2))
        assert divs == []

    def test_wrong_labels_detected(self):
        g = gen.cliques_on_a_path(3, 4)[0]  # 3 blocks

        def bad_runner(h, algorithm, backend=None, p=None):
            return BCCResult(h, np.zeros(h.m, dtype=np.int64), algorithm)

        d = differential_check(g, "tv-filter", runner=bad_runner)
        assert isinstance(d, Divergence)
        assert d.check == "differential"
        assert d.graph is g
        assert "diverge" in d.message

    def test_crash_reported_not_raised(self):
        def crashing_runner(h, algorithm, backend=None, p=None):
            raise RuntimeError("kernel exploded")

        d = differential_check(gen.cycle_graph(4), "tv-opt", runner=crashing_runner)
        assert d is not None
        assert "crashed" in d.message and "kernel exploded" in d.message
        assert "traceback" in d.extra

    def test_reference_reuse_matches_fresh(self):
        from repro.qa.oracle import reference_labels

        g = gen.random_gnm(30, 50, seed=2)
        ref = reference_labels(g)
        assert differential_check(g, "tv-smp", reference=ref) is None

    def test_describe_mentions_config(self):
        d = Divergence("differential", "boom", algorithm="tv-opt",
                       backend="threads", p=4, graph=gen.cycle_graph(3))
        text = d.describe()
        assert "tv-opt" in text and "threads" in text and "p=4" in text


class TestServiceReplay:
    def test_clean_replay(self):
        g = gen.random_connected_gnm(50, 130, seed=6)
        assert service_replay_check(g, num_ops=40, seed=3) is None

    def test_tiny_graphs_skipped(self):
        from repro.graph import Graph

        assert service_replay_check(Graph(1, [], [])) is None
        assert service_replay_check(Graph(0, [], [])) is None

    def test_crash_reported_not_raised(self, monkeypatch):
        import repro.qa.oracle as oracle_mod

        g = gen.random_connected_gnm(20, 40, seed=0)

        def boom(*args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr("repro.service.driver.run_workload", boom)
        d = oracle_mod.service_replay_check(g, num_ops=10, seed=0)
        assert d is not None and d.check == "service"
        assert "crashed" in d.message


class TestDefaultRunner:
    def test_matches_api(self):
        from repro.qa.oracle import default_runner

        g = gen.random_connected_gnm(40, 100, seed=1)
        res = default_runner(g, "tv-filter")
        ref = biconnected_components(g, algorithm="tv-filter")
        assert res.same_partition(ref)
