"""The fuzz driver end to end: clean runs, planted mutants, artifacts.

The planted-mutant test is the ISSUE's acceptance case: condition 1 of
the filter stage is skipped on a scratch copy (monkeypatched
``_finish_labels``) and the harness must catch it and shrink the repro
to at most 20 edges.
"""

import json

import numpy as np
import pytest

from repro.api import biconnected_components
from repro.core import strategies as core_strategies
from repro.graph import generators as gen
from repro.qa import FuzzConfig, differential_check, minimize_graph, run_fuzz


def _mutant_finish_labels(ctx, labels, ccl):
    """The planted bug: condition-1 back-labelling skipped; filtered
    edges are dumped into an arbitrary block instead of the deeper
    endpoint's tree-edge component."""
    outside = np.flatnonzero(~ctx.consider)
    labels[outside] = 0
    ctx.labels = labels
    ctx.ccl = ccl


def _mutant_runner(g, algorithm, backend=None, p=None):
    # fallback_ratio=None keeps tv-filter on its filtering path even on
    # sparse graphs (the default falls back to tv-opt for m <= 4n, which
    # never executes the mutated code)
    return biconnected_components(
        g, algorithm=algorithm, backend=backend, p=p, fallback_ratio=None
    )


class TestCleanFuzz:
    def test_short_run_no_divergences(self, tmp_path):
        config = FuzzConfig(
            seconds=30,
            seed=2026,
            backends=("simulated", "serial"),
            ps=(1, 2),
            max_iterations=8,
            out_dir=str(tmp_path),
        )
        report = run_fuzz(config)
        assert report.ok, [d.describe() for d in report.divergences]
        assert report.iterations == 8
        assert report.checks > 8
        assert report.artifacts == []
        assert not list(tmp_path.iterdir()), "no artifacts on a clean run"

    def test_report_summary_format(self, tmp_path):
        config = FuzzConfig(seconds=5, seed=1, backends=("simulated",),
                            max_iterations=2, out_dir=str(tmp_path))
        report = run_fuzz(config)
        assert "OK" in report.summary()
        assert "seed=1" in report.summary()

    def test_iteration_stream_is_seeded(self, tmp_path):
        config = dict(seconds=5, backends=("simulated",), algorithms=("tv-opt",),
                      max_iterations=3, out_dir=str(tmp_path))
        r1 = run_fuzz(FuzzConfig(seed=5, **config))
        r2 = run_fuzz(FuzzConfig(seed=5, **config))
        assert r1.checks == r2.checks and r1.ok and r2.ok


class TestPlantedMutant:
    def test_mutant_caught_and_minimized(self, tmp_path, monkeypatch):
        monkeypatch.setattr(core_strategies, "_finish_labels",
                            _mutant_finish_labels)
        config = FuzzConfig(
            seconds=60,
            seed=0,
            algorithms=("tv-filter",),
            backends=("simulated",),
            max_iterations=40,
            max_failures=1,
            minimize_budget=600,
            out_dir=str(tmp_path),
        )
        report = run_fuzz(config, runner=_mutant_runner)
        assert not report.ok, "planted mutant must be caught"
        assert report.artifacts, "failure must produce a repro artifact"

        doc = json.loads(open(report.artifacts[0]).read())
        assert doc["check"] == "differential"
        assert doc["algorithm"] == "tv-filter"
        assert doc["minimized"] is not None
        assert doc["minimized"]["m"] <= 20, (
            f"repro must shrink to <= 20 edges, got {doc['minimized']['m']}"
        )
        assert "repro" in doc and "--seed 0" in doc["repro"]

        # the minimized graph must still trip the oracle
        from repro.graph import Graph

        edges = doc["minimized"]["edges"]
        h = Graph(doc["minimized"]["n"], [e[0] for e in edges],
                  [e[1] for e in edges])
        assert differential_check(h, "tv-filter", runner=_mutant_runner) is not None

    def test_mutant_invisible_with_default_fallback(self, monkeypatch):
        # sanity: with the default fallback ratio, sparse graphs take the
        # tv-opt path and never execute the mutated filter code — the
        # fuzzer must disable the fallback to cover it (as _mutant_runner
        # does); K4+pendant is sparse (m <= 4n) so it falls back cleanly
        monkeypatch.setattr(core_strategies, "_finish_labels",
                            _mutant_finish_labels)
        g = gen.complete_graph(4)
        assert differential_check(g, "tv-filter") is None

    def test_direct_minimization_bound(self, monkeypatch):
        monkeypatch.setattr(core_strategies, "_finish_labels",
                            _mutant_finish_labels)
        g = gen.random_connected_gnm(30, 70, seed=0)
        d = differential_check(g, "tv-filter", runner=_mutant_runner)
        assert d is not None

        def still_fails(h):
            return differential_check(h, "tv-filter",
                                      runner=_mutant_runner) is not None

        small = minimize_graph(g, still_fails, max_checks=600)
        assert small.m <= 20
        assert still_fails(small)


class TestCrashFinding:
    def test_crashing_algorithm_is_caught(self, tmp_path):
        def crashing_runner(g, algorithm, backend=None, p=None):
            if g.m >= 3:
                raise RuntimeError("planted crash")
            return biconnected_components(g, algorithm=algorithm)

        config = FuzzConfig(
            seconds=10, seed=1, algorithms=("tv-filter",),
            backends=("simulated",), max_iterations=5, max_failures=1,
            minimize_budget=100, service_every=0, out_dir=str(tmp_path),
        )
        report = run_fuzz(config, runner=crashing_runner)
        assert not report.ok
        doc = json.loads(open(report.artifacts[0]).read())
        assert "crashed" in doc["message"]
        # crash minimizes to the smallest graph that still crashes: 3 edges
        assert doc["minimized"]["m"] == 3
