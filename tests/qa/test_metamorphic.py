"""Metamorphic relations: hold on correct code, trip on planted bugs."""

import numpy as np
import pytest

from repro.core.result import BCCResult
from repro.core.tarjan import tarjan_bcc
from repro.graph import generators as gen
from repro.qa.metamorphic import RELATIONS, metamorphic_check
from tests.strategies import graph_corpus

ALGOS = ("tv-smp", "tv-opt", "tv-filter")


class TestRelationsHold:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_all_relations_on_corpus(self, algorithm):
        for name, g in graph_corpus():
            divs = metamorphic_check(g, algorithm, seed=7)
            assert divs == [], (name, [d.describe() for d in divs])

    def test_sequential_baseline_also_passes(self):
        # the relations are algorithm-agnostic; Tarjan must satisfy them too
        for name, g in graph_corpus()[:12]:
            assert metamorphic_check(g, "sequential", seed=3) == [], name

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        from repro.qa.corpus import random_graph

        _, g = random_graph(rng, max_n=40)
        assert metamorphic_check(g, "tv-filter", seed=seed) == []


class TestRelationsTrip:
    def test_merge_bug_trips_a_relation(self):
        # planted bug: any two blocks merged into one whenever there are
        # several — breaks bridge-subdivision (+1 block) and disjoint-union
        # (counts add) immediately
        def merging_runner(h, algorithm, backend=None, p=None):
            res = tarjan_bcc(h)
            labels = res.edge_labels.copy()
            if labels.size and labels.max() >= 1:
                labels[labels == labels.max()] = labels.max() - 1
            return BCCResult(h, labels, algorithm)

        g = gen.cliques_on_a_path(3, 4)[0]
        divs = metamorphic_check(g, "tv-filter", runner=merging_runner, seed=0)
        assert divs, "merging mutant must trip at least one relation"
        assert all(d.check in RELATIONS for d in divs)

    def test_vertex_id_dependence_trips_relabel(self):
        # planted bug: edges incident to vertex 0 are forced into block 0 —
        # an answer that depends on vertex ids cannot survive relabeling
        def id_dependent_runner(h, algorithm, backend=None, p=None):
            res = tarjan_bcc(h)
            labels = res.edge_labels.copy()
            if labels.size:
                labels[(h.u == 0) | (h.v == 0)] = labels[0]
            return BCCResult(h, labels, algorithm)

        g = gen.cliques_on_a_path(4, 4)[0]
        divs = metamorphic_check(g, "tv-filter", runner=id_dependent_runner, seed=2)
        assert divs
        assert any(d.check == "relabel" for d in divs) or len(divs) >= 1

    def test_crash_reported_as_divergence(self):
        calls = {"n": 0}

        def crash_on_second(h, algorithm, backend=None, p=None):
            calls["n"] += 1
            if calls["n"] > 1:
                raise RuntimeError("boom on transformed graph")
            return tarjan_bcc(h)

        g = gen.cycle_graph(5)
        divs = metamorphic_check(
            g, "tv-filter", runner=crash_on_second, seed=0, relations=["relabel"]
        )
        assert len(divs) == 1
        assert "crashed" in divs[0].message


class TestDeterminism:
    def test_single_relation_replays_identically(self):
        # the minimizer predicate re-runs one relation with the recorded
        # seed; that must reproduce the same verdict as the full sweep
        g = gen.block_graph(10, seed=1)[0]
        for name in RELATIONS:
            full = metamorphic_check(g, "tv-opt", seed=(3, 4))
            single = metamorphic_check(g, "tv-opt", seed=(3, 4), relations=[name])
            assert full == []
            assert single == []

    def test_seed_accepts_tuple(self):
        g = gen.cycle_graph(6)
        assert metamorphic_check(g, "tv-filter", seed=(1, 2, 3)) == []

    def test_unknown_relation_raises(self):
        with pytest.raises(KeyError):
            metamorphic_check(gen.cycle_graph(3), "tv-filter",
                              relations=["nonexistent"])
