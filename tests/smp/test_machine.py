"""Unit tests for the simulated SMP machine accounting."""

import math

import pytest

from repro.smp import (
    FLAT_UNIT_COSTS,
    NULL_MACHINE,
    Counters,
    CostTable,
    Machine,
    NullMachine,
    Ops,
    e4500,
    flat_machine,
    resolve_machine,
    sequential_machine,
)


def flat(p=1):
    return Machine(p=p, costs=FLAT_UNIT_COSTS)


class TestParallelCharging:
    def test_time_is_ceil_work_over_p(self):
        m = flat(p=4)
        m.parallel(10, Ops(contig=1))  # ceil(10/4)=3 items, 1 ns each
        assert m.totals.time_ns == pytest.approx(3.0)

    def test_exact_division(self):
        m = flat(p=5)
        m.parallel(10, Ops(alu=2))
        assert m.totals.time_ns == pytest.approx(2 * 2)

    def test_rounds_multiply(self):
        m = flat(p=2)
        m.parallel(4, Ops(contig=1), rounds=3)
        assert m.totals.time_ns == pytest.approx(3 * 2)
        assert m.totals.parallel_rounds == 3
        assert m.totals.barriers == 3

    def test_work_counts_total_items(self):
        m = flat(p=8)
        m.parallel(100, Ops(contig=2, random=3, alu=1))
        assert m.totals.work_contig == 200
        assert m.totals.work_random == 300
        assert m.totals.work_alu == 100

    def test_zero_items_is_free(self):
        m = flat(p=4)
        m.parallel(0, Ops(contig=5))
        assert m.totals.time_ns == 0
        assert m.totals.parallel_rounds == 0

    def test_barrier_added_per_round(self):
        t = CostTable("t", 1, 1, 1, barrier_base_ns=100, barrier_log_ns=0, spawn_ns=0)
        m = Machine(p=4, costs=t)
        m.parallel(4, Ops(contig=1))
        assert m.totals.time_ns == pytest.approx(1 + 100)

    def test_no_barrier_single_processor(self):
        t = CostTable("t", 1, 1, 1, barrier_base_ns=100, barrier_log_ns=0, spawn_ns=0)
        m = Machine(p=1, costs=t)
        m.parallel(4, Ops(contig=1))
        assert m.totals.time_ns == pytest.approx(4)

    def test_span_tracks_critical_path(self):
        m = flat(p=4)
        m.parallel(10, Ops(contig=1))
        assert m.totals.span_items == 3


class TestSequentialCharging:
    def test_full_cost_no_division(self):
        m = flat(p=8)
        m.sequential(10, Ops(random=2))
        assert m.totals.time_ns == pytest.approx(20)
        assert m.totals.seq_sections == 1
        assert m.totals.barriers == 0

    def test_zero_is_free(self):
        m = flat()
        m.sequential(0, Ops(random=5))
        assert m.totals.time_ns == 0


class TestSpawnBarrier:
    def test_spawn_only_when_parallel(self):
        t = CostTable("t", 1, 1, 1, 0, 0, spawn_ns=500)
        m1 = Machine(p=1, costs=t)
        m1.spawn()
        assert m1.totals.time_ns == 0
        m2 = Machine(p=4, costs=t)
        m2.spawn()
        assert m2.totals.time_ns == 500

    def test_explicit_barrier(self):
        t = CostTable("t", 1, 1, 1, barrier_base_ns=50, barrier_log_ns=0, spawn_ns=0)
        m = Machine(p=2, costs=t)
        m.barrier()
        assert m.totals.time_ns == 50
        assert m.totals.barriers == 1


class TestRegions:
    def test_region_accumulates(self):
        m = flat(p=1)
        with m.region("a"):
            m.parallel(5, Ops(contig=1))
        with m.region("b"):
            m.parallel(7, Ops(contig=1))
        rep = m.report()
        assert rep.regions["a"].time_ns == pytest.approx(5)
        assert rep.regions["b"].time_ns == pytest.approx(7)
        assert rep.time_ns == pytest.approx(12)

    def test_reentering_region_accumulates(self):
        m = flat()
        for _ in range(3):
            with m.region("x"):
                m.parallel(2, Ops(contig=1))
        assert m.report().regions["x"].time_ns == pytest.approx(6)

    def test_nested_regions_dotted_paths(self):
        m = flat()
        with m.region("outer"):
            m.parallel(1, Ops(contig=1))
            with m.region("inner"):
                m.parallel(10, Ops(contig=1))
        rep = m.report()
        assert rep.regions["outer"].time_ns == pytest.approx(11)
        assert rep.regions["outer.inner"].time_ns == pytest.approx(10)
        # only top-level regions in region_times_s
        assert set(rep.region_times_s()) == {"outer"}

    def test_charges_outside_any_region_counted_in_totals_only(self):
        m = flat()
        m.parallel(9, Ops(contig=1))
        rep = m.report()
        assert rep.regions == {}
        assert rep.time_ns == pytest.approx(9)

    def test_region_times_sum_to_at_most_total(self):
        m = flat()
        with m.region("a"):
            m.parallel(3, Ops(contig=1))
        m.parallel(2, Ops(contig=1))
        rep = m.report()
        assert sum(rep.region_times_s().values()) <= rep.time_s + 1e-12


class TestReportAndLifecycle:
    def test_report_is_snapshot(self):
        m = flat()
        m.parallel(5, Ops(contig=1))
        rep = m.report()
        m.parallel(5, Ops(contig=1))
        assert rep.time_ns == pytest.approx(5)
        assert m.totals.time_ns == pytest.approx(10)

    def test_reset(self):
        m = flat()
        with m.region("r"):
            m.parallel(5, Ops(contig=1))
        m.reset()
        assert m.totals.time_ns == 0
        assert m.report().regions == {}

    def test_as_dict_roundtrip_fields(self):
        m = flat(p=2)
        with m.region("r"):
            m.parallel(4, Ops(contig=1, alu=1))
        d = m.report().as_dict()
        assert d["p"] == 2
        assert "r" in d["regions"]
        assert d["totals"]["work_total"] == 8

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            Machine(p=0)


class TestWallRegions:
    def test_wall_measured_per_region(self):
        m = flat()
        with m.region("a"):
            m.parallel(5, Ops(contig=1))
        rep = m.report()
        assert rep.wall_regions["a"] > 0.0
        assert rep.wall_time_s == pytest.approx(rep.wall_regions["a"])

    def test_nested_regions_keep_dotted_wall_paths(self):
        m = flat()
        with m.region("outer"):
            with m.region("inner"):
                m.parallel(1, Ops(contig=1))
        rep = m.report()
        assert set(rep.wall_regions) == {"outer", "outer.inner"}
        # the parent's span covers the child's
        assert rep.wall_regions["outer"] >= rep.wall_regions["outer.inner"]
        # only top-level paths feed the wall total
        assert set(rep.region_wall_s()) == {"outer"}

    def test_reentry_accumulates_wall(self):
        m = flat()
        with m.region("x"):
            pass
        once = m.report().wall_regions["x"]
        with m.region("x"):
            pass
        assert m.report().wall_regions["x"] > once

    def test_reset_clears_wall(self):
        m = flat()
        with m.region("r"):
            pass
        m.reset()
        rep = m.report()
        assert rep.wall_regions == {}
        assert rep.wall_time_s == 0.0

    def test_as_dict_wall_roundtrip(self):
        m = flat()
        with m.region("r"):
            m.parallel(3, Ops(contig=1))
        d = m.report().as_dict()
        assert d["wall"]["regions"]["r"] > 0.0
        assert d["wall"]["time_s"] == pytest.approx(d["wall"]["regions"]["r"])
        # a pure simulation (no regions entered) reports no wall section
        m2 = flat()
        m2.parallel(3, Ops(contig=1))
        assert "wall" not in m2.report().as_dict()


class TestCounters:
    def test_add_and_delta(self):
        a = Counters(time_ns=5, work_contig=1, barriers=2)
        snap = a.snapshot()
        a.add(Counters(time_ns=3, work_random=4))
        d = a.delta_since(snap)
        assert d.time_ns == pytest.approx(3)
        assert d.work_random == 4
        assert d.barriers == 0

    def test_time_s(self):
        assert Counters(time_ns=2.5e9).time_s == pytest.approx(2.5)


class TestNullMachine:
    def test_records_nothing(self):
        m = NullMachine()
        m.spawn()
        m.barrier()
        m.parallel(1000, Ops(random=10))
        m.sequential(1000, Ops(random=10))
        with m.region("x"):
            m.parallel(5, Ops(contig=1))
        assert m.totals.time_ns == 0
        assert m.report().regions == {}

    def test_singleton_resolution(self):
        assert resolve_machine(None) is NULL_MACHINE
        m = flat()
        assert resolve_machine(m) is m
        assert isinstance(NULL_MACHINE, NullMachine)

    def test_singleton_region_leaves_no_trace(self):
        with NULL_MACHINE.region("x"):
            NULL_MACHINE.parallel(10, Ops(contig=1))
        assert NULL_MACHINE.totals.time_ns == 0
        assert NULL_MACHINE.telemetry.stack == ()


class TestPresets:
    def test_e4500_bounds(self):
        assert e4500(12).p == 12
        with pytest.raises(ValueError):
            e4500(15)
        with pytest.raises(ValueError):
            e4500(0)

    def test_sequential_machine(self):
        assert sequential_machine().p == 1

    def test_flat_machine(self):
        m = flat_machine(3)
        m.parallel(3, Ops(random=1))
        assert m.totals.time_ns == pytest.approx(1)
