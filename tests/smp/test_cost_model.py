"""Unit tests for the cost-model primitives (Ops, CostTable)."""

import math

import pytest

from repro.smp import FLAT_UNIT_COSTS, SUN_E4500, CostTable, Ops


class TestOps:
    def test_defaults_are_zero(self):
        ops = Ops()
        assert ops.contig == 0 and ops.random == 0 and ops.alu == 0
        assert ops.total == 0

    def test_add_combines_fields(self):
        a = Ops(contig=1, random=2, alu=3)
        b = Ops(contig=10, random=20, alu=30)
        c = a + b
        assert (c.contig, c.random, c.alu) == (11, 22, 33)

    def test_scaled(self):
        s = Ops(contig=1, random=2, alu=4).scaled(2.5)
        assert (s.contig, s.random, s.alu) == (2.5, 5.0, 10.0)

    def test_total(self):
        assert Ops(contig=1, random=2, alu=3).total == 6

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Ops().contig = 1  # type: ignore[misc]


class TestCostTable:
    def test_op_cost_weighted_sum(self):
        table = CostTable("t", contig_ns=2, random_ns=10, alu_ns=1,
                          barrier_base_ns=0, barrier_log_ns=0, spawn_ns=0)
        assert table.op_cost_ns(Ops(contig=3, random=2, alu=4)) == 3 * 2 + 2 * 10 + 4

    def test_barrier_zero_for_single_processor(self):
        assert SUN_E4500.barrier_ns(1) == 0.0

    def test_barrier_grows_with_p(self):
        costs = [SUN_E4500.barrier_ns(p) for p in (2, 4, 8, 12)]
        assert costs == sorted(costs)
        assert costs[0] > 0

    def test_barrier_log_model(self):
        t = CostTable("t", 1, 1, 1, barrier_base_ns=100, barrier_log_ns=10, spawn_ns=0)
        assert t.barrier_ns(8) == pytest.approx(100 + 10 * 3)
        assert t.barrier_ns(12) == pytest.approx(100 + 10 * math.log2(12))

    def test_flat_table_everything_unit(self):
        assert FLAT_UNIT_COSTS.op_cost_ns(Ops(contig=1)) == 1.0
        assert FLAT_UNIT_COSTS.op_cost_ns(Ops(random=1)) == 1.0
        assert FLAT_UNIT_COSTS.op_cost_ns(Ops(alu=1)) == 1.0
        assert FLAT_UNIT_COSTS.barrier_ns(12) == 0.0

    def test_e4500_random_much_costlier_than_contig(self):
        # the cache-behaviour argument of the paper depends on this ratio
        assert SUN_E4500.random_ns / SUN_E4500.contig_ns > 5
