"""Tests for trace recording and replay."""

import numpy as np
import pytest

from repro.core import tv_opt_bcc, tv_smp_bcc
from repro.graph import generators as gen
from repro.smp import FLAT_UNIT_COSTS, SUN_E4500, Machine, Ops
from repro.smp.trace import TraceEvent, TraceMachine, evaluate_trace


class TestRecording:
    def test_events_recorded_with_paths(self):
        m = TraceMachine(p=4)
        with m.region("outer"):
            m.parallel(10, Ops(contig=1))
            with m.region("inner"):
                m.sequential(3, Ops(alu=1))
        m.spawn()
        kinds = [(e.kind, e.path) for e in m.trace]
        assert kinds == [
            ("parallel", "outer"),
            ("sequential", "outer.inner"),
            ("spawn", ""),
        ]

    def test_zero_charges_not_recorded(self):
        m = TraceMachine(p=2)
        m.parallel(0, Ops(contig=1))
        m.sequential(0, Ops(contig=1))
        assert m.trace == []

    def test_charges_like_a_normal_machine(self):
        g = gen.random_connected_gnm(200, 600, seed=1)
        direct = Machine(6, SUN_E4500)
        tv_opt_bcc(g, direct)
        traced = TraceMachine(p=6, costs=SUN_E4500)
        tv_opt_bcc(g, traced)
        assert traced.time_s == pytest.approx(direct.time_s)


class TestReplay:
    @pytest.mark.parametrize("algo", [tv_opt_bcc, tv_smp_bcc])
    def test_same_p_replay_is_exact(self, algo):
        g = gen.random_connected_gnm(300, 900, seed=2)
        traced = TraceMachine(p=8)
        algo(g, traced)
        rep = evaluate_trace(traced.trace, 8, traced.costs)
        assert rep.time_s == pytest.approx(traced.time_s, rel=1e-12)
        direct_regions = traced.report().region_times_s()
        replay_regions = rep.region_times_s()
        assert set(direct_regions) == set(replay_regions)
        for k in direct_regions:
            assert replay_regions[k] == pytest.approx(direct_regions[k], rel=1e-12)

    def test_cross_p_replay_close_to_direct(self):
        g = gen.random_connected_gnm(400, 1600, seed=3)
        traced = TraceMachine(p=12)
        tv_opt_bcc(g, traced)
        for p in (1, 2, 4, 6):
            rep = evaluate_trace(traced.trace, p, traced.costs)
            direct = Machine(p, SUN_E4500)
            tv_opt_bcc(g, direct)
            assert rep.time_s == pytest.approx(direct.time_s, rel=0.05), p

    def test_replay_monotone_in_p(self):
        g = gen.random_connected_gnm(300, 1200, seed=4)
        traced = TraceMachine(p=12)
        tv_opt_bcc(g, traced)
        times = [evaluate_trace(traced.trace, p, traced.costs).time_s
                 for p in (1, 2, 4, 8, 12)]
        assert times == sorted(times, reverse=True)

    def test_work_independent_of_replay_p(self):
        g = gen.random_connected_gnm(200, 600, seed=5)
        traced = TraceMachine(p=12, costs=FLAT_UNIT_COSTS)
        tv_opt_bcc(g, traced)
        w1 = evaluate_trace(traced.trace, 1, FLAT_UNIT_COSTS).totals.work_total
        w12 = evaluate_trace(traced.trace, 12, FLAT_UNIT_COSTS).totals.work_total
        assert w1 == pytest.approx(w12)

    def test_costs_swap(self):
        # a trace can be re-priced under a different cost table
        m = TraceMachine(p=2, costs=SUN_E4500)
        m.parallel(100, Ops(random=1))
        flat = evaluate_trace(m.trace, 2, FLAT_UNIT_COSTS)
        assert flat.time_ns == pytest.approx(50.0)  # ceil(100/2) * 1ns

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            evaluate_trace([], 0, SUN_E4500)

    def test_barrier_and_spawn_events(self):
        m = TraceMachine(p=4)
        m.barrier()
        m.spawn()
        rep1 = evaluate_trace(m.trace, 1, m.costs)
        assert rep1.time_ns == 0.0  # no barriers/spawns at p=1
        rep4 = evaluate_trace(m.trace, 4, m.costs)
        assert rep4.time_ns == pytest.approx(
            m.costs.barrier_ns(4) + m.costs.spawn_ns
        )
