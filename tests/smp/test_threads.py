"""Tests for the real-thread (pthreads-analogue) executor."""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.primitives import connected_components
from repro.smp.threads import (
    ThreadTeam,
    threaded_connected_components,
    threaded_prefix_sum,
)


class TestThreadTeam:
    def test_parallel_for_covers_range_exactly_once(self):
        with ThreadTeam(4) as team:
            hits = np.zeros(103, dtype=np.int64)

            def body(rank, lo, hi):
                hits[lo:hi] += 1

            team.parallel_for(103, body)
            assert (hits == 1).all()

    def test_blocks_are_contiguous_and_balanced(self):
        team = ThreadTeam(4)
        try:
            blocks = [team._block(r, 10) for r in range(4)]
            assert blocks == [(0, 3), (3, 6), (6, 8), (8, 10)]
        finally:
            team.close()

    def test_rank_visible_to_body(self):
        with ThreadTeam(3) as team:
            seen = np.full(3, -1, dtype=np.int64)

            def body(rank, lo, hi):
                seen[rank] = rank

            team.parallel_for(30, body)
            assert seen.tolist() == [0, 1, 2]

    def test_reusable_across_many_calls(self):
        with ThreadTeam(2) as team:
            acc = np.zeros(10, dtype=np.int64)

            def body(rank, lo, hi):
                acc[lo:hi] += 1

            for _ in range(25):
                team.parallel_for(10, body)
            assert (acc == 25).all()

    def test_exceptions_propagate(self):
        with ThreadTeam(2) as team:
            def bad(rank, lo, hi):
                raise ValueError("boom")

            with pytest.raises(ValueError, match="boom"):
                team.parallel_for(4, bad)
            # team still usable afterwards
            ok = np.zeros(4, dtype=np.int64)

            def good(rank, lo, hi):
                ok[lo:hi] = 1

            team.parallel_for(4, good)
            assert (ok == 1).all()

    def test_empty_range(self):
        with ThreadTeam(3) as team:
            called = []

            def body(rank, lo, hi):  # pragma: no cover - must not run
                called.append(rank)

            team.parallel_for(0, body)
            assert called == []

    def test_more_workers_than_items(self):
        with ThreadTeam(8) as team:
            hits = np.zeros(3, dtype=np.int64)

            def body(rank, lo, hi):
                hits[lo:hi] += 1

            team.parallel_for(3, body)
            assert (hits == 1).all()

    def test_close_idempotent_and_rejects_use(self):
        team = ThreadTeam(2)
        team.close()
        team.close()
        with pytest.raises(RuntimeError):
            team.parallel_for(4, lambda r, a, b: None)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThreadTeam(0)


class TestThreadedPrefixSum:
    @pytest.mark.parametrize("p", [1, 2, 4, 7])
    @pytest.mark.parametrize("n", [0, 1, 5, 1000])
    def test_matches_cumsum(self, p, n):
        rng = np.random.default_rng(p * 100 + n)
        x = rng.integers(-50, 50, size=n)
        with ThreadTeam(p) as team:
            np.testing.assert_array_equal(threaded_prefix_sum(x, team), np.cumsum(x))

    def test_floats(self):
        x = np.random.default_rng(1).normal(size=500)
        with ThreadTeam(4) as team:
            np.testing.assert_allclose(
                threaded_prefix_sum(x, team), np.cumsum(x), rtol=1e-10
            )


class TestThreadedConnectivity:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_matches_vectorized_sv(self, p):
        for seed in range(4):
            g = gen.random_gnm(120, 200, seed=seed)
            ref = connected_components(g).labels
            with ThreadTeam(p) as team:
                got = threaded_connected_components(g.n, g.u, g.v, team)
            # both label every vertex with its component minimum
            np.testing.assert_array_equal(got, ref)

    def test_empty_and_edgeless(self):
        with ThreadTeam(2) as team:
            assert threaded_connected_components(0, np.array([]), np.array([]), team).size == 0
            out = threaded_connected_components(5, np.array([]), np.array([]), team)
            np.testing.assert_array_equal(out, np.arange(5))

    def test_path_graph(self):
        g = gen.path_graph(50)
        with ThreadTeam(4) as team:
            labels = threaded_connected_components(g.n, g.u, g.v, team)
        assert (labels == 0).all()


class TestThreadedBFS:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_levels_match_vectorized(self, p):
        from repro.primitives import bfs
        from repro.smp.threads import threaded_bfs

        for seed in range(3):
            g = gen.random_connected_gnm(150, 450, seed=seed)
            ref = bfs(g, root=0)
            with ThreadTeam(p) as team:
                parent, level = threaded_bfs(g, 0, team)
            np.testing.assert_array_equal(level, ref.level)

    def test_parents_form_valid_bfs_tree(self):
        from repro.graph.validate import is_bfs_tree
        from repro.smp.threads import threaded_bfs

        g = gen.random_connected_gnm(200, 500, seed=5)
        with ThreadTeam(4) as team:
            parent, level = threaded_bfs(g, 0, team)
        assert is_bfs_tree(g, parent, level)

    def test_disconnected_unreached(self):
        from repro.graph import Graph
        from repro.smp.threads import threaded_bfs

        g = Graph(5, [0, 3], [1, 4])
        with ThreadTeam(2) as team:
            parent, level = threaded_bfs(g, 0, team)
        assert parent[3] == -1 and level[4] == -1
        assert level[1] == 1

    def test_path_levels(self):
        from repro.smp.threads import threaded_bfs

        g = gen.path_graph(30)
        with ThreadTeam(3) as team:
            parent, level = threaded_bfs(g, 0, team)
        np.testing.assert_array_equal(level, np.arange(30))
