"""Unit tests for the edge-list Graph representation."""

import numpy as np
import pytest

from repro.graph import Graph


class TestNormalization:
    def test_self_loops_dropped(self):
        g = Graph(3, [0, 1, 2], [0, 2, 2])
        assert g.m == 1
        assert g.u.tolist() == [1] and g.v.tolist() == [2]

    def test_duplicates_collapsed(self):
        g = Graph(3, [0, 1, 0, 0], [1, 0, 1, 2])
        assert g.m == 2
        assert g.edges().tolist() == [[0, 1], [0, 2]]

    def test_orientation_canonicalized(self):
        g = Graph(4, [3, 2], [1, 0])
        assert (g.u < g.v).all()
        assert g.edges().tolist() == [[0, 2], [1, 3]]

    def test_lexicographic_order(self):
        g = Graph(5, [4, 0, 2, 0], [3, 4, 1, 1])
        assert g.edges().tolist() == [[0, 1], [0, 4], [1, 2], [3, 4]]

    def test_normalize_false_trusts_input(self):
        g = Graph(3, [0, 1], [1, 2], normalize=False)
        assert g.m == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Graph(3, [0], [3])
        with pytest.raises(ValueError):
            Graph(3, [-1], [0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Graph(3, [0, 1], [1])

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1, [], [])

    def test_edges_read_only(self):
        g = Graph(3, [0], [1])
        with pytest.raises(ValueError):
            g.u[0] = 2


class TestProperties:
    def test_counts(self):
        g = Graph(5, [0, 1, 2], [1, 2, 3])
        assert g.n == 5 and g.m == 3

    def test_density(self):
        g = Graph(4, [0, 1], [1, 2])
        assert g.density == pytest.approx(1.0)
        assert Graph(0, [], []).density == 0.0

    def test_degrees(self):
        g = Graph(4, [0, 0, 1], [1, 2, 2])
        assert g.degrees().tolist() == [2, 2, 2, 0]

    def test_has_edge(self):
        g = Graph(4, [0, 1], [1, 3])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.has_edge(3, 1)
        assert not g.has_edge(0, 3)
        assert not g.has_edge(2, 3)

    def test_arcs_both_directions(self):
        g = Graph(3, [0, 1], [1, 2])
        tail, head, eid = g.arcs()
        assert tail.tolist() == [0, 1, 1, 2]
        assert head.tolist() == [1, 2, 0, 1]
        assert eid.tolist() == [0, 1, 0, 1]

    def test_repr(self):
        assert repr(Graph(3, [0], [1])) == "Graph(n=3, m=1)"


class TestConversions:
    def test_csr_cached(self):
        g = Graph(3, [0, 1], [1, 2])
        assert g.csr() is g.csr()

    def test_networkx_roundtrip(self):
        g = Graph(5, [0, 1, 2, 0], [1, 2, 3, 4])
        back = Graph.from_networkx(g.to_networkx())
        assert back == g

    def test_from_networkx_requires_contiguous_labels(self):
        import networkx as nx

        G = nx.Graph()
        G.add_edge(1, 5)
        with pytest.raises(ValueError):
            Graph.from_networkx(G)

    def test_from_edge_array(self):
        g = Graph.from_edge_array(4, [(0, 1), (2, 3)])
        assert g.m == 2
        assert Graph.from_edge_array(4, []).m == 0


class TestEdits:
    def test_subgraph_without_edges(self):
        g = Graph(4, [0, 1, 2], [1, 2, 3])
        sub = g.subgraph_without_edges(np.array([False, True, False]))
        assert sub.edges().tolist() == [[0, 1], [2, 3]]
        assert sub.n == g.n

    def test_subgraph_mask_shape_checked(self):
        g = Graph(4, [0], [1])
        with pytest.raises(ValueError):
            g.subgraph_without_edges(np.array([True, False]))

    def test_union_edges(self):
        a = Graph(4, [0], [1])
        b = Graph(4, [1, 0], [2, 1])
        u = a.union_edges(b)
        assert u.edges().tolist() == [[0, 1], [1, 2]]

    def test_union_vertex_set_mismatch(self):
        with pytest.raises(ValueError):
            Graph(3, [], []).union_edges(Graph(4, [], []))


class TestEquality:
    def test_eq_and_hash(self):
        a = Graph(3, [0, 1], [1, 2])
        b = Graph(3, [1, 0], [2, 1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Graph(3, [0], [1])
        assert a != Graph(4, [0, 1], [1, 2])

    def test_eq_other_type(self):
        assert Graph(1, [], []).__eq__(42) is NotImplemented


class TestSubgraph:
    def test_induced(self):
        g = Graph(5, [0, 1, 2, 0], [1, 2, 3, 4])
        sub, mapping = g.subgraph(np.array([0, 1, 2]))
        assert sub.n == 3
        assert sub.edges().tolist() == [[0, 1], [1, 2]]
        assert mapping.tolist() == [0, 1, 2]

    def test_relabelled(self):
        g = Graph(6, [2, 4], [4, 5])
        sub, mapping = g.subgraph(np.array([2, 4, 5]))
        assert mapping.tolist() == [2, 4, 5]
        assert sub.edges().tolist() == [[0, 1], [1, 2]]

    def test_empty_selection(self):
        g = Graph(4, [0], [1])
        sub, mapping = g.subgraph(np.array([], dtype=np.int64))
        assert sub.n == 0 and sub.m == 0

    def test_duplicates_collapsed(self):
        g = Graph(4, [0], [1])
        sub, mapping = g.subgraph(np.array([1, 0, 1]))
        assert sub.n == 2 and sub.m == 1

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            Graph(3, [], []).subgraph(np.array([5]))
