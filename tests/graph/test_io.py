"""Unit tests for graph serialization."""

import io

import pytest

from repro.graph import Graph, generators as gen
from repro.graph.io import read_dimacs, read_edgelist, write_dimacs, write_edgelist


class TestEdgeList:
    def test_roundtrip_stringio(self):
        g = gen.random_gnm(30, 60, seed=1)
        buf = io.StringIO()
        write_edgelist(g, buf)
        buf.seek(0)
        assert read_edgelist(buf) == g

    def test_roundtrip_file(self, tmp_path):
        g = gen.cycle_graph(9)
        path = tmp_path / "g.edges"
        write_edgelist(g, path)
        assert read_edgelist(path) == g

    def test_empty_graph(self, tmp_path):
        g = Graph(4, [], [])
        path = tmp_path / "empty.edges"
        write_edgelist(g, path)
        back = read_edgelist(path)
        assert back.n == 4 and back.m == 0

    def test_header_checked(self):
        with pytest.raises(ValueError):
            read_edgelist(io.StringIO("3\n0 1\n"))

    def test_edge_count_checked(self):
        with pytest.raises(ValueError):
            read_edgelist(io.StringIO("3 2\n0 1\n"))


class TestDimacs:
    def test_roundtrip(self, tmp_path):
        g = gen.random_gnm(20, 40, seed=2)
        path = tmp_path / "g.dimacs"
        write_dimacs(g, path, comment="generated\nfor tests")
        assert read_dimacs(path) == g

    def test_one_based_conversion(self):
        buf = io.StringIO()
        write_dimacs(Graph(2, [0], [1]), buf)
        text = buf.getvalue()
        assert "p edge 2 1" in text
        assert "e 1 2" in text

    def test_comments_ignored(self):
        g = read_dimacs(io.StringIO("c hello\np edge 3 1\ne 1 3\n"))
        assert g.n == 3 and g.edges().tolist() == [[0, 2]]

    def test_edge_before_problem_line(self):
        with pytest.raises(ValueError):
            read_dimacs(io.StringIO("e 1 2\np edge 3 1\n"))

    def test_missing_problem_line(self):
        with pytest.raises(ValueError):
            read_dimacs(io.StringIO("c nothing here\n"))

    def test_bad_problem_line(self):
        with pytest.raises(ValueError):
            read_dimacs(io.StringIO("p graph 3 1\ne 1 2\n"))

    def test_unknown_line(self):
        with pytest.raises(ValueError):
            read_dimacs(io.StringIO("p edge 2 1\nx 1 2\n"))


class TestMetis:
    def test_roundtrip(self, tmp_path):
        g = gen.random_gnm(25, 60, seed=3)
        path = tmp_path / "g.metis"
        from repro.graph.io import read_metis, write_metis

        write_metis(g, path)
        assert read_metis(path) == g

    def test_isolated_vertices(self):
        from repro.graph.io import read_metis, write_metis

        g = Graph(6, [0, 2], [1, 4])
        buf = io.StringIO()
        write_metis(g, buf)
        buf.seek(0)
        assert read_metis(buf) == g

    def test_comments_skipped(self):
        from repro.graph.io import read_metis

        g = read_metis(io.StringIO("% header comment\n3 1\n2\n1\n\n"))
        assert g.n == 3 and g.edges().tolist() == [[0, 1]]

    def test_row_count_checked(self):
        from repro.graph.io import read_metis

        with pytest.raises(ValueError):
            read_metis(io.StringIO("3 1\n2\n1\n"))

    def test_edge_count_checked(self):
        from repro.graph.io import read_metis

        with pytest.raises(ValueError):
            read_metis(io.StringIO("2 5\n2\n1\n"))

    def test_empty_file(self):
        from repro.graph.io import read_metis

        with pytest.raises(ValueError):
            read_metis(io.StringIO(""))
