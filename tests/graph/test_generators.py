"""Unit tests for the graph generators."""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.validate import is_connected, is_simple


class TestRandomGnm:
    def test_exact_counts(self):
        g = gen.random_gnm(100, 250, seed=1)
        assert g.n == 100 and g.m == 250

    def test_simple(self):
        assert is_simple(gen.random_gnm(50, 300, seed=2))

    def test_deterministic_by_seed(self):
        a = gen.random_gnm(60, 120, seed=9)
        b = gen.random_gnm(60, 120, seed=9)
        assert a == b
        assert a != gen.random_gnm(60, 120, seed=10)

    def test_full_density(self):
        g = gen.random_gnm(8, 28, seed=0)
        assert g.m == 28  # = C(8,2): the complete graph

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            gen.random_gnm(4, 7, seed=0)

    def test_edges_on_tiny_vertex_set_rejected(self):
        with pytest.raises(ValueError):
            gen.random_gnm(1, 1, seed=0)

    def test_zero_edges(self):
        assert gen.random_gnm(5, 0).m == 0


class TestRandomConnected:
    def test_connected(self):
        for seed in range(5):
            g = gen.random_connected_gnm(80, 120, seed=seed)
            assert g.n == 80 and g.m == 120
            assert is_connected(g)

    def test_tree_case(self):
        g = gen.random_connected_gnm(50, 49, seed=3)
        assert g.m == 49 and is_connected(g)

    def test_too_few_edges_rejected(self):
        with pytest.raises(ValueError):
            gen.random_connected_gnm(10, 8, seed=0)

    def test_single_vertex(self):
        g = gen.random_connected_gnm(1, 0, seed=0)
        assert g.n == 1 and g.m == 0


class TestRandomTree:
    def test_is_tree(self):
        g = gen.random_tree(40, seed=4)
        assert g.m == 39 and is_connected(g)

    def test_tiny(self):
        assert gen.random_tree(1).m == 0
        assert gen.random_tree(2).m == 1


class TestStructured:
    def test_path(self):
        g = gen.path_graph(6)
        assert g.m == 5
        deg = g.degrees()
        assert deg[0] == deg[5] == 1 and (deg[1:5] == 2).all()

    def test_path_trivial(self):
        assert gen.path_graph(1).m == 0
        assert gen.path_graph(0).n == 0

    def test_cycle(self):
        g = gen.cycle_graph(7)
        assert g.m == 7 and (g.degrees() == 2).all()
        with pytest.raises(ValueError):
            gen.cycle_graph(2)

    def test_star(self):
        g = gen.star_graph(6)
        assert g.m == 5
        assert g.degrees()[0] == 5

    def test_complete(self):
        g = gen.complete_graph(6)
        assert g.m == 15 and (g.degrees() == 5).all()

    def test_dense_gnm(self):
        g = gen.dense_gnm(12, 0.7, seed=1)
        assert g.m == round(66 * 0.7)
        with pytest.raises(ValueError):
            gen.dense_gnm(5, 0.0)

    def test_binary_tree(self):
        g = gen.binary_tree(15)
        assert g.m == 14 and is_connected(g)

    def test_grid(self):
        g = gen.grid_graph(3, 4)
        assert g.n == 12 and g.m == 3 * 3 + 2 * 4
        assert is_connected(g)
        with pytest.raises(ValueError):
            gen.grid_graph(0, 3)

    def test_torus(self):
        g = gen.torus_graph(3, 5)
        assert g.n == 15 and (g.degrees() == 4).all()
        with pytest.raises(ValueError):
            gen.torus_graph(2, 5)


class TestBlockFamilies:
    def test_cliques_on_a_path_structure(self):
        import networkx as nx

        g, k = gen.cliques_on_a_path(4, 5)
        assert k == 4
        assert g.n == 4 * 4 + 1
        assert g.m == 4 * 10
        blocks = list(nx.biconnected_components(g.to_networkx()))
        assert len(blocks) == k

    def test_cycles_chain_structure(self):
        import networkx as nx

        g, k = gen.cycles_chain(5, 4)
        assert k == 5
        blocks = list(nx.biconnected_components(g.to_networkx()))
        assert len(blocks) == k

    def test_block_graph_matches_networkx(self):
        import networkx as nx

        for seed in range(4):
            g, k = gen.block_graph(15, seed=seed)
            assert is_connected(g)
            blocks = list(nx.biconnected_components(g.to_networkx()))
            assert len(blocks) == k

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            gen.cliques_on_a_path(0, 3)
        with pytest.raises(ValueError):
            gen.cycles_chain(2, 2)
        with pytest.raises(ValueError):
            gen.block_graph(0)


class TestPaperInstance:
    def test_small_paper_instance(self):
        g = gen.paper_instance(n=2000, edges_per_vertex=4.0, seed=1)
        assert g.n == 2000 and g.m == 8000
        assert is_connected(g)


class TestRmat:
    def test_basic_shape(self):
        g = gen.rmat_graph(10, edge_factor=8.0, seed=1)
        assert g.n == 1024
        assert 0 < g.m <= 8 * 1024
        assert is_simple(g)

    def test_deterministic(self):
        assert gen.rmat_graph(8, seed=3) == gen.rmat_graph(8, seed=3)
        assert gen.rmat_graph(8, seed=3) != gen.rmat_graph(8, seed=4)

    def test_skewed_degrees(self):
        # R-MAT with default parameters produces a heavy-tailed degree
        # distribution: max degree far above the mean
        g = gen.rmat_graph(12, edge_factor=8.0, seed=0)
        deg = g.degrees()
        assert deg.max() > 6 * deg.mean()

    def test_uniform_parameters_not_skewed(self):
        g = gen.rmat_graph(12, edge_factor=8.0, a=0.25, b=0.25, c=0.25, seed=0)
        deg = g.degrees()
        assert deg.max() < 6 * max(deg.mean(), 1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            gen.rmat_graph(0)
        with pytest.raises(ValueError):
            gen.rmat_graph(5, a=0.9, b=0.1, c=0.1)

    def test_bcc_algorithms_handle_rmat(self):
        import numpy as np

        from repro import ALGORITHMS, biconnected_components

        g = gen.rmat_graph(8, edge_factor=4.0, seed=5)
        results = [biconnected_components(g, algorithm=a) for a in sorted(ALGORITHMS)]
        for other in results[1:]:
            assert results[0].same_partition(other)


class TestBarabasiAlbert:
    def test_basic_shape(self):
        g = gen.barabasi_albert(200, k=3, seed=1)
        assert g.n == 200
        assert g.m == 3 * (200 - 3)  # k edges per arrival, n-k arrivals
        assert is_simple(g)
        assert is_connected(g)

    def test_k1_is_tree(self):
        g = gen.barabasi_albert(64, k=1, seed=2)
        assert g.m == 63 and is_connected(g)

    def test_deterministic(self):
        assert gen.barabasi_albert(100, k=2, seed=3) == gen.barabasi_albert(100, k=2, seed=3)
        assert gen.barabasi_albert(100, k=2, seed=3) != gen.barabasi_albert(100, k=2, seed=4)

    def test_preferential_attachment_skews_degrees(self):
        # hubs emerge: max degree far above the mean (and above any
        # same-size uniform G(n, m) would plausibly produce)
        g = gen.barabasi_albert(2000, k=2, seed=0)
        deg = g.degrees()
        assert deg.max() > 6 * deg.mean()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            gen.barabasi_albert(1, k=1)
        with pytest.raises(ValueError):
            gen.barabasi_albert(10, k=0)
        with pytest.raises(ValueError):
            gen.barabasi_albert(5, k=5)

    def test_bcc_algorithms_handle_ba(self):
        from repro import ALGORITHMS, biconnected_components

        g = gen.barabasi_albert(150, k=2, seed=5)
        results = [biconnected_components(g, algorithm=a) for a in sorted(ALGORITHMS)]
        for other in results[1:]:
            assert results[0].same_partition(other)

    def test_family_registration(self):
        from repro.service.store import GRAPH_FAMILIES, make_graph

        assert "barabasi-albert" in GRAPH_FAMILIES
        g = make_graph("barabasi-albert", 100, m=300, seed=0)  # k = 3
        assert g.n == 100 and g.m == 3 * 97


class TestGeometric:
    def test_basic(self):
        g = gen.geometric_graph(300, 0.1, seed=1)
        assert g.n == 300
        assert is_simple(g)

    def test_radius_monotone(self):
        sparse = gen.geometric_graph(200, 0.05, seed=2)
        dense = gen.geometric_graph(200, 0.2, seed=2)
        assert dense.m > sparse.m

    def test_zero_vertices(self):
        assert gen.geometric_graph(0, 0.1).n == 0

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            gen.geometric_graph(10, 0.0)

    def test_edges_respect_radius(self):
        import numpy as np

        n, r, seed = 150, 0.12, 7
        g = gen.geometric_graph(n, r, seed=seed)
        pts = np.random.default_rng(seed).random((n, 2))
        d = np.linalg.norm(pts[g.u] - pts[g.v], axis=1)
        assert (d <= r + 1e-12).all()
