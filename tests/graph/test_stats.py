"""Unit tests for graph statistics."""

import numpy as np
import pytest

from repro.graph import Graph, generators as gen
from repro.graph.stats import (
    estimate_diameter,
    frontier_profile,
    graph_stats,
)


class TestEstimateDiameter:
    def test_path_exact(self):
        assert estimate_diameter(gen.path_graph(30)) == 29

    def test_cycle(self):
        # double sweep on an even cycle finds the exact diameter n/2
        assert estimate_diameter(gen.cycle_graph(20)) == 10

    def test_star(self):
        assert estimate_diameter(gen.star_graph(15)) == 2

    def test_complete(self):
        assert estimate_diameter(gen.complete_graph(8)) == 1

    def test_lower_bound_property(self):
        import networkx as nx

        for seed in range(3):
            g = gen.random_connected_gnm(40, 70, seed=seed)
            true_d = nx.diameter(g.to_networkx())
            est = estimate_diameter(g, sweeps=3, seed=seed)
            assert est <= true_d
            assert est >= max(1, true_d - 1)  # double sweep is near-exact

    def test_random_graphs_have_tiny_diameter(self):
        # Palmer's theorem, the paper's §4 argument
        g = gen.random_connected_gnm(2000, 20 * 2000, seed=1)
        assert estimate_diameter(g) <= 4

    def test_empty_and_edgeless(self):
        assert estimate_diameter(Graph(0, [], [])) == 0
        assert estimate_diameter(Graph(5, [], [])) == 0


class TestFrontierProfile:
    def test_path(self):
        prof = frontier_profile(gen.path_graph(6), root=0)
        np.testing.assert_array_equal(prof, np.ones(6))

    def test_star(self):
        prof = frontier_profile(gen.star_graph(9), root=0)
        np.testing.assert_array_equal(prof, [1, 8])

    def test_counts_sum_to_component(self):
        g = gen.random_connected_gnm(200, 600, seed=2)
        assert frontier_profile(g).sum() == 200

    def test_empty(self):
        assert frontier_profile(Graph(3, [], [])).sum() == 1  # just the root


class TestGraphStats:
    def test_basic_fields(self):
        g = gen.random_connected_gnm(100, 400, seed=3)
        st = graph_stats(g)
        assert st.n == 100 and st.m == 400
        assert st.avg_degree == pytest.approx(8.0)
        assert st.num_components == 1
        assert st.largest_component == 100
        assert st.isolated_vertices == 0
        assert st.min_degree >= 1

    def test_disconnected(self):
        g = Graph(7, [0, 1, 3], [1, 2, 4])  # comps {0,1,2}, {3,4}, {5}, {6}
        st = graph_stats(g)
        assert st.num_components == 4
        assert st.largest_component == 3
        assert st.isolated_vertices == 2

    def test_as_dict(self):
        d = graph_stats(gen.cycle_graph(5)).as_dict()
        assert d["n"] == 5 and d["m"] == 5

    def test_empty_graph(self):
        st = graph_stats(Graph(0, [], []))
        assert st.n == 0 and st.num_components == 0

    def test_skew_visible_in_p99(self):
        g = gen.rmat_graph(11, edge_factor=8, seed=1)
        st = graph_stats(g)
        assert st.max_degree > st.degree_p99 >= 1
