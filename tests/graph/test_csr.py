"""Unit tests for the CSR adjacency view."""

import numpy as np
import pytest

from repro.graph import CSRGraph, Graph, expand_ranges


class TestExpandRanges:
    def test_basic(self):
        out = expand_ranges(np.array([0, 5]), np.array([3, 7]))
        assert out.tolist() == [0, 1, 2, 5, 6]

    def test_empty_ranges_skipped(self):
        out = expand_ranges(np.array([2, 4, 4]), np.array([2, 6, 4]))
        assert out.tolist() == [4, 5]

    def test_all_empty(self):
        assert expand_ranges(np.array([1]), np.array([1])).size == 0
        assert expand_ranges(np.array([], dtype=np.int64), np.array([], dtype=np.int64)).size == 0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            expand_ranges(np.array([3]), np.array([1]))


class TestCSRGraph:
    def g(self):
        #   0 - 1 - 2
        #    \  |
        #       3
        return Graph(4, [0, 1, 1, 0], [1, 2, 3, 3])

    def test_from_edges_structure(self):
        csr = self.g().csr()
        assert csr.n == 4
        assert csr.num_arcs == 8
        assert csr.indptr.tolist() == [0, 2, 5, 6, 8]

    def test_neighbors_sorted(self):
        csr = self.g().csr()
        assert csr.neighbors(0).tolist() == [1, 3]
        assert csr.neighbors(1).tolist() == [0, 2, 3]
        assert csr.neighbors(2).tolist() == [1]
        assert csr.neighbors(3).tolist() == [0, 1]

    def test_degree(self):
        csr = self.g().csr()
        assert [csr.degree(v) for v in range(4)] == [2, 3, 1, 2]

    def test_edge_ids_match_edge_list(self):
        g = self.g()
        csr = g.csr()
        for v in range(g.n):
            for w, e in zip(csr.neighbors(v), csr.incident_edge_ids(v)):
                a, b = sorted((v, int(w)))
                assert g.u[e] == a and g.v[e] == b

    def test_gather_frontier(self):
        csr = self.g().csr()
        srcs, dsts, eids = csr.gather_frontier(np.array([0, 2]))
        assert srcs.tolist() == [0, 0, 2]
        assert dsts.tolist() == [1, 3, 1]

    def test_gather_empty_frontier(self):
        csr = self.g().csr()
        srcs, dsts, eids = csr.gather_frontier(np.array([], dtype=np.int64))
        assert srcs.size == dsts.size == eids.size == 0

    def test_isolated_vertices(self):
        g = Graph(5, [1], [3])
        csr = g.csr()
        assert csr.degree(0) == 0 and csr.degree(4) == 0
        assert csr.neighbors(1).tolist() == [3]

    def test_empty_graph(self):
        csr = Graph(3, [], []).csr()
        assert csr.num_arcs == 0
        assert csr.indptr.tolist() == [0, 0, 0, 0]

    def test_repr(self):
        assert "CSRGraph" in repr(self.g().csr())
