"""Unit tests for structural validation helpers."""

import numpy as np
import pytest

from repro.graph import Graph, generators as gen
from repro.graph.validate import (
    is_bfs_tree,
    is_connected,
    is_simple,
    is_spanning_tree,
    tree_depths,
    validate_parent_array,
)


class TestIsSimple:
    def test_normalized_graph_is_simple(self):
        assert is_simple(gen.random_gnm(20, 40, seed=1))

    def test_self_loop_detected(self):
        g = Graph(3, [0, 1], [0, 2], normalize=False)
        assert not is_simple(g)

    def test_duplicate_detected(self):
        g = Graph(3, [0, 1], [1, 0], normalize=False)
        assert not is_simple(g)

    def test_empty(self):
        assert is_simple(Graph(3, [], []))


class TestIsConnected:
    def test_connected(self):
        assert is_connected(gen.cycle_graph(5))
        assert is_connected(gen.path_graph(10))

    def test_disconnected(self):
        assert not is_connected(Graph(4, [0], [1]))

    def test_trivial(self):
        assert is_connected(Graph(0, [], []))
        assert is_connected(Graph(1, [], []))


class TestParentArray:
    def test_valid_forest(self):
        parent = np.array([0, 0, 1, 0, 4])  # roots 0 and 4
        roots = validate_parent_array(parent, 5)
        assert roots.tolist() == [0, 4]

    def test_cycle_detected(self):
        with pytest.raises(ValueError):
            validate_parent_array(np.array([1, 0]), 2)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            validate_parent_array(np.array([0, 5]), 2)

    def test_wrong_shape(self):
        with pytest.raises(ValueError):
            validate_parent_array(np.array([0, 1]), 3)

    def test_empty(self):
        assert validate_parent_array(np.array([], dtype=np.int64), 0).size == 0


class TestSpanningTree:
    def test_valid(self):
        g = gen.cycle_graph(4)
        parent = np.array([0, 0, 1, 0])
        assert is_spanning_tree(g, parent)
        assert is_spanning_tree(g, parent, root=0)

    def test_wrong_root(self):
        g = gen.cycle_graph(4)
        assert not is_spanning_tree(g, np.array([0, 0, 1, 0]), root=2)

    def test_non_edge_rejected(self):
        g = gen.path_graph(4)  # 0-1-2-3
        parent = np.array([0, 0, 0, 2])  # (2,0) is not an edge
        assert not is_spanning_tree(g, parent)

    def test_wrong_component_count(self):
        g = Graph(4, [0, 2], [1, 3])  # two components
        parent = np.array([0, 0, 2, 2])
        assert is_spanning_tree(g, parent)
        # a single root cannot span two components
        assert not is_spanning_tree(g, np.array([0, 0, 0, 2]))

    def test_cycle_in_parent(self):
        g = gen.cycle_graph(3)
        assert not is_spanning_tree(g, np.array([1, 2, 0]))


class TestTreeDepths:
    def test_chain(self):
        parent = np.array([0, 0, 1, 2, 3])
        assert tree_depths(parent).tolist() == [0, 1, 2, 3, 4]

    def test_star(self):
        parent = np.array([0, 0, 0, 0])
        assert tree_depths(parent).tolist() == [0, 1, 1, 1]

    def test_forest(self):
        parent = np.array([0, 0, 2, 2, 3])
        assert tree_depths(parent).tolist() == [0, 1, 0, 1, 2]

    def test_empty(self):
        assert tree_depths(np.array([], dtype=np.int64)).size == 0


class TestBfsTree:
    def test_valid_bfs(self):
        g = gen.cycle_graph(5)
        parent = np.array([0, 0, 1, 4, 0])
        levels = np.array([0, 1, 2, 2, 1])
        assert is_bfs_tree(g, parent, levels)

    def test_level_gap_rejected(self):
        # DFS tree of the 4-cycle: edge (0,3) joins levels 0 and 3
        g = gen.cycle_graph(4)
        parent = np.array([0, 0, 1, 2])
        levels = np.array([0, 1, 2, 3])
        assert not is_bfs_tree(g, parent, levels)

    def test_root_level_must_be_zero(self):
        g = gen.path_graph(2)
        assert not is_bfs_tree(g, np.array([0, 0]), np.array([1, 2]))

    def test_child_level_consistency(self):
        g = gen.path_graph(3)
        parent = np.array([0, 0, 1])
        assert not is_bfs_tree(g, parent, np.array([0, 1, 5]))

    def test_invalid_parent_rejected(self):
        g = gen.path_graph(2)
        assert not is_bfs_tree(g, np.array([1, 0]), np.array([0, 1]))

    def test_wrong_levels_shape(self):
        g = gen.path_graph(2)
        assert not is_bfs_tree(g, np.array([0, 0]), np.array([0]))
