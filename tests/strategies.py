"""Shared graph fixtures and hypothesis strategies for every test suite.

One place instead of per-suite copy-pasted lists: the named corpus is
:func:`repro.qa.corpus.named_corpus` (the fuzzer and the tests exercise
the same instances), plus hypothesis strategies for drawing random
graphs and the medium-sized driver graphs the runtime end-to-end tests
run the full pipeline on.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph import Graph, generators as gen
from repro.qa.corpus import (  # noqa: F401 - re-exported for test suites
    bridge_chain,
    disconnected_union,
    glued_cliques,
    messy_edges_graph,
    mutate,
    named_corpus,
)


def graph_corpus() -> list[tuple[str, Graph]]:
    """The shared ``(name, graph)`` corpus (see ``repro.qa.corpus``)."""
    return named_corpus()


def connected_corpus() -> list[tuple[str, Graph]]:
    from repro.graph.validate import is_connected

    return [(name, g) for name, g in named_corpus() if g.n > 0 and is_connected(g)]


def driver_graphs() -> list[tuple[str, Graph]]:
    """Medium instances for full-pipeline end-to-end runs (all backends)."""
    return [
        ("gnm", gen.random_connected_gnm(400, 1200, seed=1)),
        ("torus", gen.torus_graph(12, 14)),
        ("cliques-path", gen.cliques_on_a_path(4, 6)[0]),
        ("star", gen.star_graph(60)),
        ("sparse-disconnected", gen.random_gnm(300, 260, seed=9)),
        ("bridge-chain", bridge_chain(20, cycle_len=5)[0]),
    ]


# --------------------------------------------------------------------- #
# hypothesis strategies


@st.composite
def gnm_graphs(draw, min_n: int = 2, max_n: int = 40, max_density: int = 4,
               connected: bool = False) -> Graph:
    """Random G(n, m) graphs (optionally connected), seeded through hypothesis.

    Mirrors the ad-hoc ``(n, data)`` pattern the suites used inline, so
    shrinking works on ``n``, ``m`` and the generator seed.
    """
    n = draw(st.integers(min_n, max_n))
    cap = min(n * (n - 1) // 2, max_density * n)
    lo = n - 1 if connected else 0
    m = draw(st.integers(min(lo, cap), cap))
    seed = draw(st.integers(0, 10**6))
    if connected:
        return gen.random_connected_gnm(n, max(m, n - 1), seed=seed)
    return gen.random_gnm(n, m, seed=seed)


@st.composite
def corpus_graphs(draw) -> Graph:
    """One graph drawn from the named corpus (uniform over entries)."""
    entries = named_corpus()
    return entries[draw(st.integers(0, len(entries) - 1))][1]


@st.composite
def any_graphs(draw, max_n: int = 40) -> Graph:
    """Corpus entries, random G(n, m), or seeded mutations of either."""
    import numpy as np

    base = draw(st.one_of(corpus_graphs(), gnm_graphs(max_n=max_n)))
    rounds = draw(st.integers(0, 2))
    if rounds:
        seed = draw(st.integers(0, 10**6))
        return mutate(base, np.random.default_rng(seed), rounds=rounds)
    return base
