"""Tests for the experiment harness (runners, report formatting, CLI)."""

import json

import numpy as np
import pytest

from repro.bench import report, runner

N = 2_000  # tiny scale: these tests exercise plumbing, not performance


class TestFig3Runner:
    def test_cells_cover_grid(self):
        cells = runner.run_fig3(n=N, densities=(4,), procs=(1, 4), seed=1)
        algos = {c.algorithm for c in cells}
        assert algos == {"sequential", "tv-smp", "tv-opt", "tv-filter"}
        parallel = [c for c in cells if c.algorithm != "sequential"]
        assert len(parallel) == 3 * 2
        assert all(c.sim_time_s > 0 and c.wall_time_s >= 0 for c in cells)

    def test_speedup_definition(self):
        cells = runner.run_fig3(n=N, densities=(4,), procs=(4,), seed=1)
        seq = next(c for c in cells if c.algorithm == "sequential")
        for c in cells:
            assert c.speedup == pytest.approx(seq.sim_time_s / c.sim_time_s)

    def test_verification_on_by_default(self):
        # verify=True cross-checks parallel results against Tarjan; just
        # confirm it runs without raising
        runner.run_fig3(n=N, densities=(4,), procs=(2,), seed=2, verify=True)

    def test_format_fig3(self):
        cells = runner.run_fig3(n=N, densities=(4,), procs=(1, 4), seed=1)
        text = report.format_fig3(cells)
        assert "Fig. 3" in text
        assert "tv-filter speedup" in text
        assert "m/n=4" in text


class TestFig4Runner:
    def test_rows_and_steps(self):
        rows = runner.run_fig4(n=N, densities=(4,), p=4, seed=1)
        assert len(rows) == 3
        for r in rows:
            assert r.total_s > 0
            assert sum(r.steps.values()) <= r.total_s * (1 + 1e-9)
        smp = next(r for r in rows if r.algorithm == "tv-smp")
        assert smp.steps["Root-tree"] > 0
        opt = next(r for r in rows if r.algorithm == "tv-opt")
        assert opt.steps["Root-tree"] == 0.0

    def test_format_fig4(self):
        rows = runner.run_fig4(n=N, densities=(4,), p=4, seed=1)
        text = report.format_fig4(rows)
        assert "Fig. 4" in text and "TOTAL" in text
        assert "Spanning-tree" in text


class TestFig1Runner:
    def test_paper_numbers(self):
        out = runner.run_fig1()
        assert out["G1"]["condition_counts"] == (4, 4, 3)
        assert out["G1"]["aux_vertices_used"] == 10
        assert out["G1"]["aux_edges"] == 11
        assert out["G2"]["condition_counts"] == (2, 2, 3)
        assert out["G2"]["aux_vertices_used"] == 8
        assert out["G2"]["aux_edges"] == 7
        assert "G1" in report.format_fig1(out)


class TestClaimRunners:
    def test_filter_claims(self):
        rows = runner.run_filter_claims(n=N, densities=(4, 8), seed=1)
        assert len(rows) == 2
        for r in rows:
            assert r.filtered_edges >= r.guaranteed_minimum
            assert r.tree_edges + r.forest_edges + r.filtered_edges == r.m
        assert "filtered" in report.format_filter_claims(rows)

    def test_ablation_euler(self):
        rows = runner.run_ablation_euler(n=N, p=4, seed=1)
        labels = [r.label for r in rows]
        assert any("wyllie" in l for l in labels)
        assert any("prefix" in l for l in labels)
        text = report.format_ablation(rows, "t")
        assert "sim [s]" in text

    def test_ablation_spanning(self):
        # sv[textbook], sv[engineered], hcs, traversal, bfs — one full
        # pipeline per registered spanning strategy (and knob combo)
        rows = runner.run_ablation_spanning(n=N, p=4, seed=1)
        assert len(rows) == 5

    def test_ablation_auxcc(self):
        rows = runner.run_ablation_auxcc(n=N, p=4, seed=1)
        by_label = {r.label: r.sim_time_s for r in rows}
        assert by_label["tv-opt cc=pruned"] < by_label["tv-opt cc=full"]

    def test_ablation_lowhigh(self):
        assert len(runner.run_ablation_lowhigh(n=N, p=4, seed=1)) == 3

    def test_ablation_registry_generic(self):
        rows = runner.run_ablation("filter", n=N, p=4, seed=1)
        assert [r.label for r in rows] == [
            "tv-filter filter=none",
            "tv-filter filter=forest",
        ]
        for r in rows:
            assert r.extra["stage"] == "filter"
            assert r.extra["strategies"]["spanning"] == "bfs"
            assert r.sim_time_s > 0

    def test_ablation_unknown_stage(self):
        with pytest.raises(ValueError, match="unknown pipeline stage"):
            runner.run_ablation("turbo", n=N)

    def test_ablation_repair_unrooted_spanning(self):
        # ablating spanning=sv on tv-opt must repair euler to the
        # list-ranked tour (prefix numbering requires a rooted tree)
        rows = runner.run_ablation("spanning", n=N, p=4, seed=1)
        sv = next(r for r in rows if r.label == "tv-opt spanning=sv[textbook]")
        assert sv.extra["strategies"]["euler"] == "tour"
        trav = next(r for r in rows if r.label == "tv-opt spanning=traversal")
        assert trav.extra["strategies"]["euler"] == "prefix"

    def test_fallback_sweep(self):
        rows = runner.run_fallback_sweep(n=N, p=4, seed=1)
        assert len(rows) == 12  # 6 densities x 2 algorithms

    def test_pathological(self):
        rows = runner.run_pathological(n=2_000, p=4, seed=1)
        chain_filter = next(r for r in rows if "filter" in r.label and "chain" in r.label)
        chain_seq = next(r for r in rows if "sequential" in r.label and "chain" in r.label)
        assert chain_filter.sim_time_s > chain_seq.sim_time_s  # §4's warning

    def test_dense(self):
        rows = runner.run_dense(p=4, seed=1, n=300)
        assert len(rows) == 6


class TestCLI:
    def test_fig1_command(self, capsys):
        from repro.bench.__main__ import main

        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "G1" in out

    def test_json_output(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        path = tmp_path / "out.json"
        assert main(["abl-lowhigh", "--n", str(N), "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert len(data) == 3
        assert "sim_time_s" in data[0]

    def test_default_n_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_N", "1234")
        assert runner.default_n() == 1234
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert runner.default_n() == 1_000_000


class TestReplayMode:
    def test_replay_matches_direct(self):
        direct = runner.run_fig3(n=N, densities=(4,), procs=(1, 4, 12), seed=9)
        replayed = runner.run_fig3(
            n=N, densities=(4,), procs=(1, 4, 12), seed=9, replay=True
        )
        assert len(direct) == len(replayed)
        for a, b in zip(direct, replayed):
            assert (a.algorithm, a.p) == (b.algorithm, b.p)
            assert b.sim_time_s == pytest.approx(a.sim_time_s, rel=0.08)


class TestAsciiBars:
    def test_bars_scale_to_max(self):
        text = report.ascii_bars(["a", "bb"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10
        assert "2.000s" in lines[1]

    def test_zero_values(self):
        text = report.ascii_bars(["x"], [0.0])
        assert "#" not in text

    def test_empty(self):
        assert report.ascii_bars([], []) == ""

    def test_fig4_bars_render(self):
        rows = runner.run_fig4(n=N, densities=(4,), p=4, seed=1)
        text = report.format_fig4_bars(rows)
        assert "tv-smp" in text and "#" in text
        assert "Root-tree" in text


class TestServiceBench:
    def test_run_service_bench(self):
        rep = runner.run_service_bench(n=800, ops=300, seed=1, p=4)
        assert rep.num_ops == 300
        assert rep.graph_n == 800
        assert rep.graph_m == 800 * 10  # m = n * round(log2 n)
        assert rep.throughput_ops_s > 0
        assert rep.query_p99_us > 0
        assert rep.cache_hit_rate > 0
        assert rep.p == 4 and rep.sim_time_s > 0
        assert "Service-build" in rep.sim_regions

    def test_respects_bench_n_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_N", "500")
        rep = runner.run_service_bench(ops=50, seed=1, p=0)
        assert rep.graph_n == 500
        assert rep.p is None and rep.sim_time_s is None

    def test_format_service(self):
        rep = runner.run_service_bench(n=800, ops=300, seed=1, p=4)
        text = report.format_service(rep)
        assert "Service workload" in text
        assert "same_bcc" in text
        assert "hit rate" in text
        assert "simulated E4500 (p=4)" in text

    def test_run_service_batch_sweep(self):
        sweep = runner.run_service_batch_sweep(n=400, items=256, batches=(1, 16), seed=1)
        assert sweep["graph_n"] == 400
        assert abs(sum(sweep["mix"].values()) - 1.0) < 1e-9
        rows = sweep["rows"]
        assert [r["batch"] for r in rows] == [1, 16]
        # same item stream at every point: only the record count changes
        assert all(r["num_query_items"] == 256 for r in rows)
        assert rows[0]["num_ops"] == 256 and rows[1]["num_ops"] == 16
        assert rows[0]["speedup_vs_batch1"] == pytest.approx(1.0)
        assert all(r["items_per_s"] > 0 for r in rows)

    def test_format_service_sweep(self):
        sweep = runner.run_service_batch_sweep(n=400, items=128, batches=(1, 32), seed=1)
        text = report.format_service_sweep(sweep)
        assert "Service batch sweep" in text
        assert "items/s" in text and "speedup" in text
        assert "1.0x" in text

    def test_cli_service_json(self, tmp_path, capsys, monkeypatch):
        from repro.bench.__main__ import main

        # chdir away from the repo root so the experiment's results/
        # auto-write cannot touch the committed BENCH_service.json
        monkeypatch.chdir(tmp_path)
        path = tmp_path / "svc.json"
        monkey_n = "600"
        assert main(["service", "--n", monkey_n, "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Service workload" in out
        assert "Service batch sweep" in out
        assert "Service tail latency" in out
        data = json.loads(path.read_text())
        assert data["version"] == 4
        assert data["workload"]["graph_n"] == 600
        assert data["workload"]["throughput_ops_s"] > 0
        assert data["workload"]["cache_hit_rate"] > 0
        sweep = data["batch_sweep"]
        assert sweep["graph_n"] == 600
        assert [r["batch"] for r in sweep["rows"]] == [1, 16, 256, 4096]
        tail = data["tail_latency"]
        assert tail["graph_n"] == 600
        assert tail["sync"]["rebuild_mode"] == "sync"
        assert tail["async"]["rebuild_mode"] == "async"
        assert tail["fresh_verify"]["verified"] is True
        assert tail["fresh_verify"]["mismatches"] == 0
        assert tail["tail_collapse_p99"] > 0
        inc = tail["incremental_maintenance"]
        assert inc["graph_family"] == "watts-strogatz"
        assert inc["full"]["maintenance"] == "full"
        assert inc["full"]["rebuilds_incremental"] == 0
        assert inc["auto"]["maintenance"] == "auto"
        assert inc["auto_verify"]["verified"] is True
        assert inc["auto_verify"]["mismatches"] == 0
        assert "Incremental maintenance" in out

    def test_cli_service_writes_results_dir(self, tmp_path, capsys, monkeypatch):
        from repro.bench.__main__ import main

        monkeypatch.chdir(tmp_path)
        (tmp_path / "results").mkdir()
        assert main(["service", "--n", "600"]) == 0
        assert "wrote results/BENCH_service.json" in capsys.readouterr().out
        data = json.loads((tmp_path / "results" / "BENCH_service.json").read_text())
        assert data["version"] == 4
        assert data["batch_sweep"]["rows"][0]["batch"] == 1
        assert "tail_latency" in data


class TestScaleBench:
    def test_runner_shape_and_verification(self):
        result = runner.run_scale_bench(
            n=120, ops=30, shards=(1, 2), clients=(1, 2), batches=(1,),
            verify=True)
        rows = result["sweep"]
        assert len(rows) == 4  # 2 shards x 2 clients x 1 batch
        assert {(r["shards"], r["clients"]) for r in rows} == {
            (1, 1), (1, 2), (2, 1), (2, 2)}
        assert all(r["verified"] is True and r["mismatches"] == 0
                   for r in rows)
        assert all(r["clean_shutdown"] and r["leaked_segments"] == 0
                   for r in rows)
        assert all(r["throughput_ops_s"] > 0 for r in rows)
        assert result["scale"]["n"] == 120
        assert "cpu_count" in result["host"]

    def test_format_scale(self):
        from repro.bench import report

        result = runner.run_scale_bench(
            n=120, ops=20, shards=(1,), clients=(1,), batches=(1, 4),
            verify=True)
        text = report.format_scale(result)
        assert "Cluster scale sweep" in text
        assert "every configuration verified element-wise" in text

    def test_cli_scale_writes_results_dir(self, tmp_path, capsys, monkeypatch):
        from repro.bench import runner as _runner
        from repro.bench.__main__ import main

        monkeypatch.chdir(tmp_path)
        (tmp_path / "results").mkdir()
        # shrink the grid so the CLI test stays fast
        monkeypatch.setattr(_runner, "SCALE_SHARDS", (1, 2))
        monkeypatch.setattr(_runner, "SCALE_CLIENTS", (1,))
        monkeypatch.setattr(_runner, "SCALE_BATCHES", (1,))
        assert main(["scale", "--n", "120"]) == 0
        assert "wrote results/BENCH_scale.json" in capsys.readouterr().out
        data = json.loads((tmp_path / "results" / "BENCH_scale.json").read_text())
        assert all(r["verified"] for r in data["sweep"])
