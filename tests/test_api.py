"""Unit tests for the public API surface."""

import numpy as np
import pytest

import repro
from repro import (
    ALGORITHMS,
    articulation_points,
    biconnected_components,
    bridges,
)
from repro.graph import Graph, generators as gen
from tests.conftest import nx_articulation_points, nx_bridges, nx_edge_labels


class TestBiconnectedComponents:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_every_algorithm_correct(self, algorithm):
        g = gen.random_connected_gnm(60, 180, seed=1)
        res = biconnected_components(g, algorithm=algorithm)
        np.testing.assert_array_equal(res.edge_labels, nx_edge_labels(g))

    def test_default_algorithm_is_filter(self):
        res = biconnected_components(gen.cycle_graph(4))
        assert res.algorithm == "tv-filter"

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            biconnected_components(gen.cycle_graph(3), algorithm="quantum")

    def test_machine_report_attached(self):
        res = biconnected_components(
            gen.random_connected_gnm(50, 150, seed=2),
            algorithm="tv-opt",
            machine=repro.e4500(4),
        )
        assert res.report is not None
        assert res.report.p == 4
        assert res.report.time_s > 0

    def test_kwargs_forwarded(self):
        g = gen.random_connected_gnm(50, 260, seed=3)
        res = biconnected_components(
            g, algorithm="tv-filter", fallback_ratio=None, lowhigh_method="rmq"
        )
        np.testing.assert_array_equal(res.edge_labels, nx_edge_labels(g))

    def test_sequential_rejects_unknown_kwargs(self):
        g = gen.cycle_graph(5)
        with pytest.raises(TypeError, match="accepts no algorithm options"):
            biconnected_components(g, "sequential", lowhigh_method="rmq")

    def test_pipeline_rejects_unknown_kwargs(self):
        g = gen.cycle_graph(5)
        with pytest.raises(TypeError, match="unknown option"):
            biconnected_components(g, "tv-opt", turbo=True)

    def test_custom_algorithm_registered(self):
        g = gen.random_connected_gnm(40, 160, seed=4)
        res = biconnected_components(
            g, "custom", strategies={"lowhigh": "rmq", "cc": "pruned"}
        )
        assert res.algorithm == "custom"
        np.testing.assert_array_equal(res.edge_labels, nx_edge_labels(g))

    def test_list_and_describe(self):
        names = repro.list_algorithms()
        assert set(names) == set(ALGORITHMS)
        for name in names:
            text = repro.describe_algorithm(name)
            assert text  # every entry is describable
        assert "Hopcroft" in repro.describe_algorithm("sequential")
        with pytest.raises(ValueError, match="unknown algorithm"):
            repro.describe_algorithm("quantum")


class TestDerivedQueries:
    def test_articulation_points(self):
        g = gen.cliques_on_a_path(3, 4)[0]
        np.testing.assert_array_equal(
            articulation_points(g), nx_articulation_points(g)
        )

    def test_bridges(self):
        g = gen.path_graph(5)
        np.testing.assert_array_equal(bridges(g), nx_bridges(g))

    def test_algorithm_selectable(self):
        g = gen.block_graph(8, seed=1)[0]
        a = articulation_points(g, algorithm="sequential")
        b = articulation_points(g, algorithm="tv-smp")
        np.testing.assert_array_equal(a, b)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_count_bfs_exported(self):
        assert repro.count_biconnected_components_bfs(gen.cycle_graph(5)) == 1


class TestIsBiconnected:
    def test_cycle_is_biconnected(self):
        from repro import is_biconnected

        assert is_biconnected(gen.cycle_graph(5))
        assert is_biconnected(gen.complete_graph(4))

    def test_not_biconnected(self):
        from repro import is_biconnected

        assert not is_biconnected(gen.path_graph(5))          # cut vertices
        assert not is_biconnected(Graph(5, [0, 2], [1, 3]))   # disconnected
        assert not is_biconnected(Graph(2, [0], [1]))         # too small
        assert not is_biconnected(Graph(4, [0, 1, 2], [1, 2, 0]))  # isolated 3

    def test_matches_networkx(self, corpus):
        import networkx as nx

        from repro import is_biconnected

        for name, g in corpus:
            if g.n < 3:
                continue
            expect = nx.is_biconnected(g.to_networkx())
            assert is_biconnected(g) == expect, name
