"""Quickstart: find the biconnected components of a graph.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro

# ---------------------------------------------------------------------------
# 1. Build a graph.  Vertices are 0..n-1; edges are pairs of endpoints.
#    This one is two triangles joined through vertex 2 plus a dangling path:
#
#        0 - 1        3 - 4
#         \  |        |  /
#           2 ——————— 3          5 - 6  (bridge chain off vertex 4)
# ---------------------------------------------------------------------------
g = repro.Graph(
    7,
    [0, 1, 0, 2, 3, 2, 4, 5],
    [1, 2, 2, 3, 4, 4, 5, 6],
)
print(f"graph: {g.n} vertices, {g.m} edges")

# ---------------------------------------------------------------------------
# 2. Compute biconnected components.  "tv-filter" is the paper's best
#    algorithm; "sequential", "tv-smp" and "tv-opt" give identical results.
# ---------------------------------------------------------------------------
result = repro.biconnected_components(g, algorithm="tv-filter")
print(f"\nbiconnected components: {result.num_components}")
for cid, edge_ids in enumerate(result.components()):
    edges = [tuple(map(int, g.edges()[e])) for e in edge_ids]
    print(f"  component {cid}: {edges}")

# ---------------------------------------------------------------------------
# 3. Derived structures: articulation (cut) vertices and bridges.
# ---------------------------------------------------------------------------
cuts = result.articulation_points()
print(f"\narticulation points: {cuts.tolist()}")
bridge_edges = [tuple(map(int, g.edges()[e])) for e in result.bridges()]
print(f"bridges: {bridge_edges}")

# ---------------------------------------------------------------------------
# 4. Run on a big random instance with the simulated Sun E4500 attached to
#    see the paper's per-step accounting.
# ---------------------------------------------------------------------------
big = repro.generators.random_connected_gnm(50_000, 400_000, seed=1)
machine = repro.e4500(p=12)
res = repro.biconnected_components(big, algorithm="tv-filter", machine=machine)
print(f"\nrandom graph n={big.n:,} m={big.m:,}: {res.num_components} component(s)")
print(f"simulated time on a 12-processor Sun E4500: {res.report.time_s:.3f}s")
for step, seconds in res.report.region_times_s().items():
    print(f"  {step:22s} {seconds:8.4f}s")

# The four algorithms always agree:
seq = repro.biconnected_components(big, algorithm="sequential")
assert res.same_partition(seq)
print("\ntv-filter matches sequential Tarjan: OK")
