"""Planarity testing via biconnected decomposition.

The paper's second motivating application (§1): biconnected components
are "also used in graph planarity testing".  A graph is planar **iff every
biconnected component is planar** — so planarity algorithms first
decompose the input into blocks (cheap, parallelizable with this library)
and run the expensive planarity check per block, which:

* shrinks the instances (blocks are much smaller than the graph),
* lets blocks be checked in parallel,
* localizes the Kuratowski obstruction when the answer is "no".

This example builds graphs that mix planar and non-planar blocks,
decomposes them with TV-filter, runs networkx's planarity check per block,
and cross-validates against checking the whole graph at once.

Run:  python examples/planarity_preprocessing.py
"""

import networkx as nx
import numpy as np

import repro
from repro.graph import Graph, generators as gen


def build_mixed_graph(seed=3):
    """A chain of blocks: grids (planar) with one K5 (non-planar) inside."""
    rng = np.random.default_rng(seed)
    us, vs = [], []
    n = 1
    blocks = []

    def attach(block_graph, name):
        nonlocal n
        # vertex 0 of the block is glued onto a random existing vertex
        glue = int(rng.integers(0, n))
        mapping = {0: glue}
        for w in range(1, block_graph.n):
            mapping[w] = n
            n += 1
        for a, b in block_graph.edges().tolist():
            us.append(mapping[a])
            vs.append(mapping[b])
        blocks.append(name)

    for i in range(4):
        attach(gen.grid_graph(3, 4), f"grid-{i}")
    attach(gen.complete_graph(5), "K5")
    for i in range(3):
        attach(gen.cycle_graph(6), f"cycle-{i}")
    return Graph(n, us, vs), blocks


def main():
    g, expected_blocks = build_mixed_graph()
    print(f"graph: {g.n} vertices, {g.m} edges, "
          f"{len(expected_blocks)} glued blocks ({', '.join(expected_blocks)})")

    res = repro.biconnected_components(g, algorithm="tv-filter")
    print(f"\nTV-filter found {res.num_components} biconnected components")

    G = g.to_networkx()
    whole_planar, _ = nx.check_planarity(G)
    print(f"whole-graph planarity check: {'planar' if whole_planar else 'NOT planar'}")

    print("\nper-block planarity:")
    verdicts = []
    edges = g.edges()
    for cid, edge_ids in enumerate(res.components()):
        block_edges = [tuple(map(int, edges[e])) for e in edge_ids]
        B = nx.Graph(block_edges)
        ok, _ = nx.check_planarity(B)
        verdicts.append(ok)
        if not ok or B.number_of_edges() >= 9:
            print(f"  block {cid}: |V|={B.number_of_nodes()} |E|={B.number_of_edges()} "
                  f"-> {'planar' if ok else 'NOT planar  <- the K5'}")

    assert all(verdicts) == whole_planar, (
        "planar iff every block is planar — decomposition disagrees!"
    )
    bad = sum(1 for v in verdicts if not v)
    print(f"\nverdicts agree: graph is {'planar' if whole_planar else 'non-planar'}; "
          f"{bad} obstructing block(s) identified.")

    # the planar-only control
    g2 = gen.grid_graph(6, 8)
    res2 = repro.biconnected_components(g2)
    ok2, _ = nx.check_planarity(g2.to_networkx())
    print(f"\ncontrol (grid): blocks={res2.num_components}, planar={ok2}")
    assert ok2


if __name__ == "__main__":
    main()
