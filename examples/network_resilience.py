"""Fault-tolerant network design with biconnected components.

The paper's motivating application (§1): "Finding biconnected components
has application in fault-tolerant network design."  A network is resilient
to single-node (single-link) failures exactly where it is biconnected
(bridge-free): an articulation point is a router whose failure partitions
the network; a bridge is a link whose failure does.

This example builds a synthetic ISP-style topology (a well-connected core,
regional aggregation rings, and customer access trees), audits it, and then
*augments* it — greedily adding redundant links until no articulation
points remain — re-auditing after every step with the paper's TV-filter
algorithm.

Run:  python examples/network_resilience.py
"""

import numpy as np

import repro

rng = np.random.default_rng(7)


def build_isp_topology(num_core=8, num_regions=6, ring_size=5, leaves_per_pop=4):
    """Core mesh + regional rings + access trees, as one edge list."""
    edges = []

    # core: a dense mesh (biconnected by construction)
    core = list(range(num_core))
    for i in core:
        for j in core[i + 1 :]:
            if rng.random() < 0.6 or j == i + 1:
                edges.append((i, j))
    edges.append((0, num_core - 1))

    next_id = num_core
    pop_routers = []
    for r in range(num_regions):
        # each region: a ring of PoP routers hanging off ONE core router —
        # the uplink is deliberately a single point of failure
        uplink = int(rng.integers(0, num_core))
        ring = list(range(next_id, next_id + ring_size))
        next_id += ring_size
        for a, b in zip(ring, ring[1:] + ring[:1]):
            edges.append((a, b))
        edges.append((uplink, ring[0]))
        pop_routers.extend(ring)

    # access: customer trees off each PoP (every access link is a bridge)
    for pop in pop_routers:
        for _ in range(leaves_per_pop):
            edges.append((pop, next_id))
            next_id += 1

    u = [a for a, b in edges]
    v = [b for a, b in edges]
    return repro.Graph(next_id, u, v), num_core, pop_routers


def audit(g, label):
    res = repro.biconnected_components(g, algorithm="tv-filter")
    cuts = res.articulation_points()
    bridges = res.bridges()
    print(f"{label}:")
    print(f"  routers={g.n}  links={g.m}")
    print(f"  biconnected components : {res.num_components}")
    print(f"  articulation points    : {cuts.size}")
    print(f"  bridge links           : {bridges.size}")
    return res, cuts


def induced_backbone(g, backbone_count):
    """Subgraph induced on routers 0..backbone_count-1 (core + PoPs)."""
    keep = (g.u < backbone_count) & (g.v < backbone_count)
    return repro.Graph(backbone_count, g.u[keep], g.v[keep])


def augment_until_biconnected(g, max_rounds=100):
    """Greedily add redundant links until the graph has no cut vertices.

    Strategy: for every articulation point, connect one neighbour from each
    of two different blocks around it — the classic ear-addition move —
    and re-audit with TV-filter after each link.
    """
    added = []
    for _ in range(max_rounds):
        res = repro.biconnected_components(g, algorithm="tv-filter")
        cuts = res.articulation_points()
        if cuts.size == 0:
            break
        v = int(cuts[0])
        # neighbours of v grouped by the block of the connecting edge
        csr = g.csr()
        nbrs = csr.neighbors(v)
        eids = csr.incident_edge_ids(v)
        blocks = res.edge_labels[eids]
        by_block = {}
        for w, b in zip(nbrs.tolist(), blocks.tolist()):
            by_block.setdefault(b, w)
        reps = sorted(by_block.values())
        a, b = reps[0], reps[1]
        g = g.union_edges(repro.Graph(g.n, [a], [b]))
        added.append((a, b))
    return g, added


def main():
    g, num_core, pops = build_isp_topology()
    audit(g, "full topology (incl. single-homed customer links)")
    backbone_count = num_core + len(pops)

    bb = induced_backbone(g, backbone_count)
    res_bb, cuts_bb = audit(bb, "\nbackbone only (core + PoP rings)")
    print(f"\nbackbone single points of failure: {cuts_bb.tolist()}")

    bb2, added = augment_until_biconnected(bb)
    print(f"\nadded {len(added)} redundant backbone links: {added}")
    res2, cuts2 = audit(bb2, "\naugmented backbone")
    assert cuts2.size == 0, "backbone still has single points of failure"
    assert res2.num_components == 1, "backbone should now be one block"
    print("\nbackbone is now 2-connected: any single core/PoP router or "
          "backbone link can fail without partitioning the backbone.")

    # apply the new links to the full topology and re-audit
    g2 = g.union_edges(
        repro.Graph(g.n, [a for a, b in added], [b for a, b in added])
    )
    res_full = repro.biconnected_components(g2, algorithm="tv-filter")
    remaining_cuts = set(res_full.articulation_points().tolist())
    assert not (remaining_cuts - set(pops)), (
        "only PoPs with single-homed customers should remain cut vertices"
    )
    print(f"full topology after augmentation: "
          f"{res_full.bridges().size} bridges remain — all of them "
          f"single-homed customer links (by design).")


if __name__ == "__main__":
    main()
