"""A miniature of the paper's Fig. 3: speedup curves on the simulated E4500.

Sweeps processor counts 1..12 for TV-SMP, TV-opt and TV-filter on random
graphs of two densities and prints the speedup-over-sequential-Tarjan
table.  Expect the paper's shape: TV-SMP never beats sequential, TV-opt
roughly halves TV-SMP, TV-filter wins at density (speedup climbing toward
the paper's "up to 4" as m approaches n log n at full scale).

Run:  python examples/speedup_study.py           (n = 50,000, ~1 minute)
      python examples/speedup_study.py 200000    (bigger n)
"""

import sys

from repro.bench.runner import run_fig3
from repro.bench.report import format_fig3
from repro.smp import PAPER_PROCESSOR_GRID


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    cells = run_fig3(n=n, densities=(4, 12), procs=PAPER_PROCESSOR_GRID, seed=42)
    print(format_fig3(cells))

    # paper-claim spot checks at p = 12
    print("\npaper-shape spot checks at p = 12:")
    for density in (4, 12):
        at = {
            c.algorithm: c
            for c in cells
            if c.density == density and (c.p == 12 or c.algorithm == "sequential")
        }
        smp, opt, filt = at["tv-smp"], at["tv-opt"], at["tv-filter"]
        print(
            f"  m/n={density:2d}: TV-SMP speedup {smp.speedup:4.2f} "
            f"({'<= 1 as the paper reports' if smp.speedup <= 1.05 else 'UNEXPECTED'}), "
            f"TV-opt/TV-SMP time ratio {opt.sim_time_s / smp.sim_time_s:4.2f}, "
            f"TV-filter speedup {filt.speedup:4.2f}"
        )


if __name__ == "__main__":
    main()
