"""Anatomy of the paper's edge-filtering algorithm (Algorithm 2).

Walks through TV-filter's phases on random graphs of increasing density:

* how many edges the BFS tree T and the spanning forest F of G − T keep,
  versus the paper's guaranteed bound max(m − 2(n−1), 0) filtered;
* how the per-step simulated cost of the downstream TV steps (Low-high,
  Label-edge, Connected-components) collapses as a result;
* the two-BFS biconnected-component *count* of the Theorem 2 corollary —
  including the erratum case where the literal recipe miscounts.

Run:  python examples/filtering_anatomy.py
"""

import numpy as np

import repro
from repro.core import count_biconnected_components_bfs, tv_bcc, tv_filter_bcc
from repro.graph import generators as gen
from repro.smp import e4500

N = 30_000


def main():
    print(f"n = {N:,}; densities m/n = 4, 8, 12, 15 (seed 42)\n")
    header = (
        f"{'m/n':>4} {'m':>8} {'|T|':>7} {'|F|':>7} {'filtered':>9} "
        f"{'bound':>9} {'%filtered':>9}  {'lowhigh':>8} {'label':>8} {'cc':>8}"
    )
    print(header)
    print("-" * len(header))
    for mult in (4, 8, 12, 15):
        g = gen.random_connected_gnm(N, mult * N, seed=42)
        stats = []
        machine = e4500(12)
        tv_filter_bcc(g, machine, fallback_ratio=None, stats_out=stats)
        st = stats[0]
        steps = machine.report().region_times_s()
        bound = max(g.m - 2 * (g.n - 1), 0)
        print(
            f"{mult:>4} {g.m:>8,} {st.tree_edges:>7,} {st.forest_edges:>7,} "
            f"{st.filtered_edges:>9,} {bound:>9,} "
            f"{100 * st.filtered_edges / g.m:>8.1f}%  "
            f"{steps['Low-high']:>8.4f} {steps['Label-edge']:>8.4f} "
            f"{steps['Connected-components']:>8.4f}"
        )

    # contrast: TV-opt's same steps at the densest point
    g = gen.random_connected_gnm(N, 15 * N, seed=42)
    machine = e4500(12)
    tv_bcc(g, machine, variant="opt")
    steps = machine.report().region_times_s()
    print(
        f"\nTV-opt at m/n=15 for comparison:              "
        f"{steps['Low-high']:>8.4f} {steps['Label-edge']:>8.4f} "
        f"{steps['Connected-components']:>8.4f}"
    )

    # ------------------------------------------------------------------
    # Theorem 2 corollary: counting blocks with two BFS passes
    # ------------------------------------------------------------------
    print("\ncounting biconnected components with two BFS passes (Theorem 2):")
    g = gen.random_connected_gnm(2_000, 16_000, seed=1)
    truth = repro.biconnected_components(g).num_components
    recipe = count_biconnected_components_bfs(g)
    print(f"  dense random graph: recipe={recipe}  truth={truth}  "
          f"({'match' if recipe == truth else 'MISMATCH'})")

    chain, k = gen.cycles_chain(6, 5)
    truth = repro.biconnected_components(chain).num_components
    recipe = count_biconnected_components_bfs(chain)
    print(f"  chain of {k} cycles:  recipe={recipe}  truth={truth}  "
          f"({'match' if recipe == truth else 'MISMATCH'})")

    tree = gen.random_tree(100, seed=2)
    truth = repro.biconnected_components(tree).num_components
    recipe = count_biconnected_components_bfs(tree)
    print(f"  tree (all bridges): recipe={recipe}  truth={truth}  "
          f"(erratum: the literal recipe cannot see bridges — see "
          f"count_biconnected_components_bfs docs)")


if __name__ == "__main__":
    main()
